// Package checker implements the post-crash consistency validation used by
// the §7.1 campaign, as a reusable library (in the spirit of PM debugging
// tools like pmemcheck/Agamotto, scoped to this programming model):
//
//   - Step 1 (program data): every expected key readable with the expected
//     value — driven by a workload model.
//   - Step 2 (GC metadata vs memory): the defragmentation phase is quiescent,
//     every reachable object is a well-formed allocation on a live frame,
//     objects do not overlap, and references are well-formed.
//
// Both checks read through the normal access path; run them after recovery
// (the cache is cold then, so reads reflect the persistent image).
package checker

import (
	"bytes"
	"fmt"
	"sort"

	"ffccd/internal/alloc"
	"ffccd/internal/ds"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

// GraphStats summarises a graph check.
type GraphStats struct {
	Objects   int
	Bytes     uint64
	PtrFields int
}

// CheckStore verifies readability and values for every key of the model
// (checker step 1). Keys are visited in ascending order: the reads go
// through the device cache, and when a run continues past the check — the
// serving path resumes dispatch right after recovery validation — the cache
// state the check leaves behind must not depend on Go's map iteration
// order.
func CheckStore(ctx *sim.Ctx, s ds.Store, model map[uint64][]byte) error {
	keys := make([]uint64, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		want := model[k]
		got, ok := s.Get(ctx, k)
		if !ok {
			return fmt.Errorf("checker: key %d lost", k)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("checker: key %d corrupted (%d bytes vs %d)", k, len(got), len(want))
		}
	}
	if s.Len() != len(model) {
		return fmt.Errorf("checker: store length %d, model %d", s.Len(), len(model))
	}
	return nil
}

// CheckGraph validates agreement between the object graph, the allocator and
// the defragmentation metadata (checker step 2). It returns statistics about
// the reachable graph on success.
func CheckGraph(ctx *sim.Ctx, p *pmop.Pool) (GraphStats, error) {
	var st GraphStats
	if phase := p.GCPhase(ctx) & 0xFF; phase != 0 {
		return st, fmt.Errorf("checker: defragmentation phase not idle: %d", phase)
	}
	heap := p.Heap()
	heapOff := heap.HeapOff()
	heapEnd := heapOff + uint64(heap.Frames())*alloc.FrameSize
	reg := p.Types()

	seenSlots := make(map[uint64]bool)
	visited := make(map[uint64]bool)
	var walk func(obj pmop.Ptr) error
	walk = func(obj pmop.Ptr) error {
		if obj.IsNull() || visited[obj.Offset()] {
			return nil
		}
		visited[obj.Offset()] = true
		off := obj.Offset()
		if off < heapOff+pmop.HeaderSize || off >= heapEnd {
			return fmt.Errorf("checker: reference outside heap: %v", obj)
		}
		if off%alloc.SlotSize != 0 {
			return fmt.Errorf("checker: unaligned reference %v", obj)
		}
		hdr := off - pmop.HeaderSize
		tid, payload := p.Header(ctx, obj)
		ti, ok := reg.Lookup(tid)
		if !ok {
			return fmt.Errorf("checker: object %#x has unregistered type %d", off, tid)
		}
		if payload == 0 || payload > 4064 {
			return fmt.Errorf("checker: object %#x (%s) has insane payload %d", off, ti.Name, payload)
		}
		if ti.Size > 0 && payload != ti.Size {
			return fmt.Errorf("checker: object %#x payload %d != registered size %d (%s)",
				off, payload, ti.Size, ti.Name)
		}
		if !heap.IsStart(hdr) {
			return fmt.Errorf("checker: reachable object %#x is not an allocation start", off)
		}
		frame := heap.FrameOf(hdr)
		if heap.State(frame) == alloc.FrameFree {
			return fmt.Errorf("checker: reachable object %#x on free frame %d", off, frame)
		}
		slots := alloc.SlotsFor(payload)
		for s := 0; s < slots; s++ {
			slotOff := hdr + uint64(s)*alloc.SlotSize
			if seenSlots[slotOff] {
				return fmt.Errorf("checker: objects overlap at %#x", slotOff)
			}
			seenSlots[slotOff] = true
		}
		st.Objects++
		st.Bytes += uint64(slots) * alloc.SlotSize
		for _, fo := range ti.PointerOffsets(payload) {
			st.PtrFields++
			ref := pmop.Ptr(p.RawLoadU64(ctx, off+fo))
			if ref.IsNull() {
				continue
			}
			if ref.PoolID() != p.ID() {
				return fmt.Errorf("checker: object %#x holds foreign-pool reference %v", off, ref)
			}
			if err := walk(ref); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(p.Root(ctx)); err != nil {
		return st, err
	}

	// The allocator's live accounting must not be below what's reachable
	// (reachable ⊆ allocated; the difference is floating garbage).
	if live := heap.LiveBytes(); live < st.Bytes {
		return st, fmt.Errorf("checker: allocator live bytes %d < reachable bytes %d", live, st.Bytes)
	}

	// Idle phase means no epoch is in flight, so no frame may still be a
	// relocation source or destination: finish/recovery demote destinations
	// to active and release relocation frames before leaving the phase.
	// (FrameMeshed is a steady state and legitimate outside epochs.)
	for f := 0; f < heap.Frames(); f++ {
		switch heap.State(f) {
		case alloc.FrameRelocation:
			return st, fmt.Errorf("checker: idle phase but frame %d still in relocation state", f)
		case alloc.FrameDestination:
			return st, fmt.Errorf("checker: idle phase but frame %d still in destination state", f)
		}
	}

	if err := checkMovedBits(ctx, p); err != nil {
		return st, err
	}
	return st, nil
}

// GC metadata layout inside the pool's reserved GC region, mirrored from
// internal/core (core cannot be imported here: its in-package tests use this
// checker). MetaLayoutFor keeps the two in lockstep — checker tests assert
// it equals core.Meta byte for byte.
const (
	movedBytesPerFrame = alloc.SlotsPerFrame / 8
	pmftEntrySize      = 8 + alloc.SlotsPerFrame
	minorInvalid       = 0xFF
)

// MetaLayout locates the persistent GC metadata arrays of a pool.
type MetaLayout struct {
	ReachedOff, MovedOff, PMFTOff uint64
}

// MetaLayoutFor computes the metadata array offsets for p.
func MetaLayoutFor(p *pmop.Pool) MetaLayout {
	base, _ := p.GCMetaRange()
	_, frames := p.HeapRange()
	return MetaLayout{
		ReachedOff: base,
		MovedOff:   base + frames*8,
		PMFTOff:    base + frames*8 + frames*movedBytesPerFrame,
	}
}

// checkMovedBits cross-checks the persistent moved bitmap against the PMFT:
// the summary phase zeroes a frame's moved bytes when it persists the
// frame's PMFT entry, and compaction only sets a moved bit at an object
// start the PMFT maps. So for every frame whose PMFT entry belongs to the
// latest epoch (entry epoch == phase-word epoch), set moved bits must be a
// subset of the PMFT-mapped slots; a violation is a stale bit that would
// corrupt the next epoch's relocation decisions. Frames with older PMFT
// epochs carry unjudgeable residue and are skipped, as is a pool that never
// ran an epoch (phase epoch 0: the zero-filled PMFT is not a valid map).
func checkMovedBits(ctx *sim.Ctx, p *pmop.Pool) error {
	epoch := p.GCPhase(ctx) >> 16 // phase word: [0,8) state, [8,16) scheme, [16,48) epoch
	if epoch == 0 {
		return nil
	}
	ml := MetaLayoutFor(p)
	heap := p.Heap()
	for f := 0; f < heap.Frames(); f++ {
		entry := ml.PMFTOff + uint64(f)*pmftEntrySize
		if p.RawLoadU64(ctx, entry)&0xFFFFFFFF != epoch {
			continue
		}
		var moved [movedBytesPerFrame]byte
		p.RawLoad(ctx, ml.MovedOff+uint64(f)*movedBytesPerFrame, moved[:])
		var minor [alloc.SlotsPerFrame]byte
		p.RawLoad(ctx, entry+8, minor[:])
		for slot := 0; slot < alloc.SlotsPerFrame; slot++ {
			if moved[slot/8]&(1<<(slot%8)) != 0 && minor[slot] == minorInvalid {
				return fmt.Errorf("checker: frame %d slot %d has a stale moved bit (epoch %d PMFT does not map it)",
					f, slot, epoch)
			}
		}
	}
	return nil
}
