package checker_test

import (
	"strings"
	"testing"

	"ffccd/internal/checker"
	"ffccd/internal/core"
	"ffccd/internal/ds"
	"ffccd/internal/pmop"
	"ffccd/internal/sim"
)

func setup(t *testing.T) (*pmop.Pool, *sim.Ctx, *ds.List) {
	t.Helper()
	cfg := sim.DefaultConfig()
	rt := pmop.NewRuntime(&cfg, 32<<20)
	reg := pmop.NewRegistry()
	ds.RegisterTypes(reg)
	p, err := rt.Create("chk", 16<<20, 12, reg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewCtx(&cfg)
	l, err := ds.NewList(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	return p, ctx, l
}

func TestCleanGraphPasses(t *testing.T) {
	p, ctx, l := setup(t)
	model := map[uint64][]byte{}
	for i := uint64(0); i < 300; i++ {
		v := []byte{byte(i), 0x42}
		if err := l.Insert(ctx, i, v); err != nil {
			t.Fatal(err)
		}
		model[i] = v
	}
	if err := checker.CheckStore(ctx, l, model); err != nil {
		t.Fatal(err)
	}
	st, err := checker.CheckGraph(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	// listroot + 300 nodes + 300 values.
	if st.Objects != 601 {
		t.Errorf("objects = %d, want 601", st.Objects)
	}
	if st.PtrFields == 0 || st.Bytes == 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
}

func TestDetectsValueCorruption(t *testing.T) {
	_, ctx, l := setup(t)
	model := map[uint64][]byte{}
	for i := uint64(0); i < 50; i++ {
		v := []byte{byte(i)}
		l.Insert(ctx, i, v)
		model[i] = v
	}
	model[7] = []byte{0xEE} // the store holds byte(7)
	err := checker.CheckStore(ctx, l, model)
	if err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("corruption undetected: %v", err)
	}
}

func TestDetectsLostKey(t *testing.T) {
	_, ctx, l := setup(t)
	model := map[uint64][]byte{1: {1}, 2: {2}}
	l.Insert(ctx, 1, []byte{1})
	err := checker.CheckStore(ctx, l, model)
	if err == nil || !strings.Contains(err.Error(), "lost") {
		t.Fatalf("lost key undetected: %v", err)
	}
}

func TestDetectsDanglingPointer(t *testing.T) {
	p, ctx, l := setup(t)
	for i := uint64(0); i < 20; i++ {
		l.Insert(ctx, i, []byte{byte(i)})
	}
	// Corrupt a node's next pointer to aim outside the heap.
	head := p.Root(ctx)
	node := p.ReadPtr(ctx, head, 0)
	p.RawStoreU64(ctx, node.Offset()+16, uint64(pmop.MakePtr(p.ID(), 32)))
	if _, err := checker.CheckGraph(ctx, p); err == nil {
		t.Fatal("dangling pointer undetected")
	}
}

func TestDetectsCorruptHeader(t *testing.T) {
	p, ctx, l := setup(t)
	for i := uint64(0); i < 20; i++ {
		l.Insert(ctx, i, []byte{byte(i)})
	}
	head := p.Root(ctx)
	node := p.ReadPtr(ctx, head, 0)
	// Smash the payload-length field of the node's header.
	p.RawStore(ctx, node.Offset()-12, []byte{0xFF, 0xFF, 0x00, 0x00})
	_, err := checker.CheckGraph(ctx, p)
	if err == nil || !strings.Contains(err.Error(), "payload") {
		t.Fatalf("corrupt header undetected: %v", err)
	}
}

func TestDetectsGCPhaseStuck(t *testing.T) {
	p, ctx, l := setup(t)
	l.Insert(ctx, 1, []byte{1})
	p.SetGCPhase(ctx, 1) // pretend a compaction epoch never finished
	_, err := checker.CheckGraph(ctx, p)
	if err == nil || !strings.Contains(err.Error(), "phase") {
		t.Fatalf("stuck phase undetected: %v", err)
	}
}

func TestDetectsReferenceToFreedObject(t *testing.T) {
	p, ctx, l := setup(t)
	for i := uint64(0); i < 20; i++ {
		l.Insert(ctx, i, []byte{byte(i)})
	}
	// Free a value object the list still references.
	head := p.Root(ctx)
	node := p.ReadPtr(ctx, head, 0)
	val := p.ReadPtr(ctx, node, 8)
	p.Free(ctx, val)
	_, err := checker.CheckGraph(ctx, p)
	if err == nil {
		t.Fatal("reference to freed object undetected")
	}
}

func TestCheckGraphAfterDefrag(t *testing.T) {
	// The checker must pass on a heap immediately after a full
	// defragmentation cycle (the state the §7.1 campaign validates).
	p, ctx, l := setup(t)
	for i := uint64(0); i < 1500; i++ {
		l.Insert(ctx, i, []byte{byte(i), byte(i >> 8), 0x3C})
	}
	for i := uint64(0); i < 1500; i += 2 {
		l.Delete(ctx, i)
	}
	opt := core.DefaultOptions()
	opt.TriggerRatio, opt.TargetRatio = 1.05, 1.02
	eng := core.NewEngine(p, opt)
	defer eng.Close()
	if !eng.RunCycle(ctx) {
		t.Skip("heap too dense")
	}
	st, err := checker.CheckGraph(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	// listroot + 750 nodes + 750 values.
	if st.Objects != 1501 {
		t.Errorf("objects = %d, want 1501", st.Objects)
	}
}
