#!/bin/sh
# benchscale.sh — CI gate for the work-stealing pool: on a multicore host,
# fig5 at FFCCD_PARALLEL=GOMAXPROCS must beat FFCCD_PARALLEL=1 on wall-clock.
# A pool regression that serializes fan-outs (helpers pinned, tokens leaked,
# stealing dead) shows up here as "parallel no faster than serial" long
# before anyone reads a BENCH file. Simulated results are identical at any
# worker count — the golden test pins that; this guards the host side.
#
# Single-core hosts skip cleanly: there is no parallel speedup to measure.
#
# Usage: scripts/benchscale.sh [scale]   (default 0.004)
set -eu
cd "$(dirname "$0")/.."

SCALE="${1:-0.004}"
TMP="${TMPDIR:-/tmp}"
CORES=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

if [ "$CORES" -lt 2 ]; then
	echo "benchscale: single-core host ($CORES cpu), nothing to compare — skipping"
	exit 0
fi

go build -o "$TMP/ffccd-benchscale" ./cmd/ffccd-bench

host_seconds() { # smallest host_seconds across the file's repetitions
	grep -o '"host_seconds": [0-9.eE+-]*' "$1" | awk -F': ' '
		NR == 1 || $2 < min { min = $2 } END { print min }'
}

FFCCD_PARALLEL=1 "$TMP/ffccd-benchscale" -experiment fig5 -scale "$SCALE" \
	-repeat 2 -json "$TMP/benchscale_serial.json" >/dev/null
FFCCD_PARALLEL=$CORES "$TMP/ffccd-benchscale" -experiment fig5 -scale "$SCALE" \
	-repeat 2 -json "$TMP/benchscale_parallel.json" >/dev/null

SER=$(host_seconds "$TMP/benchscale_serial.json")
PAR=$(host_seconds "$TMP/benchscale_parallel.json")

echo "benchscale: fig5 scale $SCALE — serial ${SER}s, parallel(x$CORES) ${PAR}s"
if ! awk -v s="$SER" -v p="$PAR" 'BEGIN { exit !(p < s) }'; then
	echo "benchscale: FAIL — FFCCD_PARALLEL=$CORES is not faster than serial" >&2
	exit 1
fi
echo "benchscale OK"
