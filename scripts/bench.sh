#!/bin/sh
# bench.sh — produce the machine-readable host-performance record BENCH_1.json.
#
# Runs the Figure 5/14 drivers (the heaviest experiment fan-outs) serially and
# at full parallelism, recording host seconds and total simulated cycles for
# each. The simulated numbers must be identical between the two runs — the
# parallel driver changes wall-clock only; the golden test pins this.
#
# Usage: scripts/bench.sh [scale]   (default 0.002, the bench_test.go default)
set -eu
cd "$(dirname "$0")/.."

SCALE="${1:-0.002}"
OUT="BENCH_1.json"

go build -o /tmp/ffccd-bench ./cmd/ffccd-bench

/tmp/ffccd-bench -experiment fig5 -scale "$SCALE" -parallel 1 -json /tmp/bench_serial.json >/dev/null
/tmp/ffccd-bench -experiment fig5 -scale "$SCALE" -json /tmp/bench_par_fig5.json >/dev/null
/tmp/ffccd-bench -experiment fig14 -scale "$SCALE" -json /tmp/bench_par_fig14.json >/dev/null

# Merge the three single-record arrays into one file.
{
  printf '[\n'
  for f in /tmp/bench_serial.json /tmp/bench_par_fig5.json /tmp/bench_par_fig14.json; do
    sed '1d;$d' "$f"
    [ "$f" != /tmp/bench_par_fig14.json ] && printf ',\n'
  done
  printf '\n]\n'
} >"$OUT"

echo "wrote $OUT:"
cat "$OUT"
