#!/bin/sh
# bench.sh — produce the machine-readable host-performance record BENCH_4.json.
#
# Runs the Figure 5/14 drivers (the heaviest experiment fan-outs) with the
# span-aware device fast path off and on (fork driver on, its production
# setting), recording host seconds, the fork counters, and the dirty-page
# checkpoint volumes (fork_checkpoint_bytes vs fork_media_bytes — their ratio
# is the sparse-checkpoint win). A fig14 row with the fork driver off keeps
# the fork-vs-scratch comparison BENCH_3.json tracked. The simulated numbers
# must be identical across every row — span, fork and parallelism change
# wall-clock only; the golden test pins this. Each configuration repeats
# (-repeat) so the file carries host-time variance instead of duplicating
# near-identical experiment lines.
#
# Usage: scripts/bench.sh [scale] [repeat]   (defaults 0.002 and 2)
set -eu
cd "$(dirname "$0")/.."

SCALE="${1:-0.002}"
REPEAT="${2:-2}"
OUT="BENCH_4.json"

go build -o /tmp/ffccd-bench ./cmd/ffccd-bench

/tmp/ffccd-bench -experiment fig5 -scale "$SCALE" -span=false -repeat "$REPEAT" -json /tmp/bench_fig5_nospan.json >/dev/null
/tmp/ffccd-bench -experiment fig5 -scale "$SCALE" -span=true -repeat "$REPEAT" -json /tmp/bench_fig5_span.json >/dev/null
/tmp/ffccd-bench -experiment fig14 -scale "$SCALE" -span=false -repeat "$REPEAT" -json /tmp/bench_fig14_nospan.json >/dev/null
/tmp/ffccd-bench -experiment fig14 -scale "$SCALE" -span=true -repeat "$REPEAT" -json /tmp/bench_fig14_span.json >/dev/null
/tmp/ffccd-bench -experiment fig14 -scale "$SCALE" -span=true -fork=false -repeat "$REPEAT" -json /tmp/bench_fig14_nofork.json >/dev/null

# Merge the per-configuration record arrays into one file.
{
  printf '[\n'
  first=1
  for f in /tmp/bench_fig5_nospan.json /tmp/bench_fig5_span.json \
           /tmp/bench_fig14_nospan.json /tmp/bench_fig14_span.json \
           /tmp/bench_fig14_nofork.json; do
    [ "$first" = 1 ] || printf ',\n'
    first=0
    sed '1d;$d' "$f"
  done
  printf '\n]\n'
} >"$OUT"

echo "wrote $OUT:"
cat "$OUT"
