#!/bin/sh
# bench.sh — produce the machine-readable host-performance record BENCH_3.json.
#
# Runs the Figure 5/14 drivers (the heaviest experiment fan-outs) with the
# checkpoint/fork driver on and off, recording host seconds, the fork
# counters (prefixes built, checkpoints taken, runs forked from them), and
# total simulated cycles for each. The simulated numbers must be identical
# across every row — fork and parallelism change wall-clock only; the golden
# test pins this. Each configuration repeats (-repeat) so the file carries
# host-time variance instead of duplicating near-identical experiment lines.
#
# The final two rows re-run fig14 (fork on) with tracing enabled: once with
# a full Chrome trace and once in flight-recorder ring mode. Comparing their
# host_seconds against the tracing-disabled fig14 fork rows is the recorded
# evidence for the observability overhead claims (disabled: the rows above
# never install a collector, so they ARE the disabled-overhead measurement).
#
# Usage: scripts/bench.sh [scale] [repeat]   (defaults 0.002 and 2)
set -eu
cd "$(dirname "$0")/.."

SCALE="${1:-0.002}"
REPEAT="${2:-2}"
OUT="BENCH_3.json"

go build -o /tmp/ffccd-bench ./cmd/ffccd-bench

/tmp/ffccd-bench -experiment fig5 -scale "$SCALE" -fork=false -repeat "$REPEAT" -json /tmp/bench_fig5_nofork.json >/dev/null
/tmp/ffccd-bench -experiment fig5 -scale "$SCALE" -fork=true -repeat "$REPEAT" -json /tmp/bench_fig5_fork.json >/dev/null
/tmp/ffccd-bench -experiment fig14 -scale "$SCALE" -fork=false -repeat "$REPEAT" -json /tmp/bench_fig14_nofork.json >/dev/null
/tmp/ffccd-bench -experiment fig14 -scale "$SCALE" -fork=true -repeat "$REPEAT" -json /tmp/bench_fig14_fork.json >/dev/null
/tmp/ffccd-bench -experiment fig14 -scale "$SCALE" -fork=true -repeat "$REPEAT" \
  -trace /tmp/bench_fig14.trace.json -json /tmp/bench_fig14_trace.json >/dev/null
/tmp/ffccd-bench -experiment fig14 -scale "$SCALE" -fork=true -repeat "$REPEAT" \
  -trace /tmp/bench_fig14.ring.json -trace-ring 256 -json /tmp/bench_fig14_ring.json >/dev/null

# Merge the per-configuration record arrays into one file.
{
  printf '[\n'
  first=1
  for f in /tmp/bench_fig5_nofork.json /tmp/bench_fig5_fork.json \
           /tmp/bench_fig14_nofork.json /tmp/bench_fig14_fork.json \
           /tmp/bench_fig14_trace.json /tmp/bench_fig14_ring.json; do
    [ "$first" = 1 ] || printf ',\n'
    first=0
    sed '1d;$d' "$f"
  done
  printf '\n]\n'
} >"$OUT"

echo "wrote $OUT:"
cat "$OUT"
