#!/bin/sh
# bench.sh — produce the next machine-readable host-performance record
# BENCH_<n>.json (one past the highest index present, so gaps in the
# sequence — deleted or never-committed records — are tolerated).
#
# Four row families, every row carrying host_cores and ffccd_parallel so
# scaling comparisons stay interpretable away from the machine they ran on:
#
#   1. Baseline rows at the working scale (span/fork on, their production
#      setting), plus a fig14 fork=off row to keep the fork-vs-scratch
#      comparison BENCH_3.json started tracked.
#   2. Per-core scaling rows: fig5 under FFCCD_PARALLEL=1/2/4/8 (the env
#      path, not -parallel, so the override plumbing is exercised too).
#   3. Serving rows: the open-loop SLO grid (serving experiment) — per-scheme
#      p50/p99/p999 and their app/interference/stall/queue decomposition,
#      demonstrating the FFCCD-vs-STW tail separation — plus the sharded
#      scaling grid: shards 1/2/4, each under FFCCD_PARALLEL=1 and =4.
#      Unlike family 2 (which parallelizes across scheme variants), these
#      exercise host parallelism INSIDE one serving run — batched dispatch
#      at shards=1, whole simulated machines as workpool jobs at shards>1.
#      sim_cycles_total must be bit-identical across FFCCD_PARALLEL within
#      one shard count. Serving rows also embed the per-window time series
#      ("windows": per-scheme throughput, p50/p99/p999, cycle decomposition,
#      and GC overlay flags per window).
#   4. Paper-scale rows: fig5 and fig14 at -scale paper (1.0, the paper's
#      full 5M-insert setup). Hours of wall-clock on a small host — skip
#      with FFCCD_BENCH_PAPER=0.
#
# The simulated numbers must be identical across every row of the same
# experiment+scale — span, fork and parallelism change wall-clock only; the
# golden test pins this, and sim_cycles_total in each row's metrics lets the
# file itself be checked. Each configuration repeats (-repeat) so the file
# carries host-time variance instead of duplicating near-identical lines.
#
# Usage: scripts/bench.sh [scale] [repeat]   (defaults 0.002 and 2;
#        scale is passed straight through to -scale, so 'paper' works)
set -eu
cd "$(dirname "$0")/.."

SCALE="${1:-0.002}"
REPEAT="${2:-2}"
PAPER="${FFCCD_BENCH_PAPER:-1}"
# Next record index: one past the highest BENCH_<n>.json present (gaps in
# the numbering are fine — only the maximum matters).
MAX=0
for f in BENCH_*.json; do
	[ -e "$f" ] || continue
	n="${f#BENCH_}"
	n="${n%.json}"
	case "$n" in
	*[!0-9]* | '') continue ;;
	esac
	[ "$n" -gt "$MAX" ] && MAX="$n"
done
OUT="BENCH_$((MAX + 1)).json"
TMP="${TMPDIR:-/tmp}"

go build -o "$TMP/ffccd-bench" ./cmd/ffccd-bench

parts=""

run() { # run <outfile> [ffccd-bench args...]
	f="$TMP/$1"
	shift
	"$TMP/ffccd-bench" -json "$f" "$@" >/dev/null
	parts="$parts $f"
}

# 1. Baseline rows at the working scale.
run bench_fig5.json -experiment fig5 -scale "$SCALE" -repeat "$REPEAT"
run bench_fig14.json -experiment fig14 -scale "$SCALE" -repeat "$REPEAT"
run bench_fig14_nofork.json -experiment fig14 -scale "$SCALE" -fork=false -repeat "$REPEAT"

# 2. Per-core scaling rows (env-var path on purpose).
for P in 1 2 4 8; do
	f="$TMP/bench_fig5_p$P.json"
	FFCCD_PARALLEL=$P "$TMP/ffccd-bench" -json "$f" \
		-experiment fig5 -scale "$SCALE" -repeat "$REPEAT" >/dev/null
	parts="$parts $f"
done

# 3. Serving rows: the SLO grid, then the sharded scaling grid — shards 1/2/4
#    each under FFCCD_PARALLEL=1 and =4. shards=1 is the unsharded dispatcher
#    (its rows carry no shards field, so the gate diffs them against older
#    records directly — the one-shard regression pin at the BENCH level);
#    shards>1 splits the keyspace across independent simulated machines run
#    as host-parallel jobs. sim_cycles_total is bit-identical across
#    FFCCD_PARALLEL within one shard count but differs BETWEEN shard counts
#    (different machine sets) — bench_gate keys on the shards field.
run bench_serving.json -experiment serving -scale "$SCALE" -repeat "$REPEAT"
for S in 1 2 4; do
	for P in 1 4; do
		f="$TMP/bench_serving_s${S}_p$P.json"
		FFCCD_PARALLEL=$P "$TMP/ffccd-bench" -json "$f" \
			-experiment serving -scale "$SCALE" -shards "$S" >/dev/null
		parts="$parts $f"
	done
done

# 4. Paper-scale rows (scale 1.0; a single repetition — these run for hours).
if [ "$PAPER" = 1 ]; then
	run bench_fig5_paper.json -experiment fig5 -scale paper
	run bench_fig14_paper.json -experiment fig14 -scale paper
fi

# Merge the per-configuration record arrays into one file.
{
	printf '[\n'
	first=1
	for f in $parts; do
		[ "$first" = 1 ] || printf ',\n'
		first=0
		sed '1d;$d' "$f"
	done
	printf '\n]\n'
} >"$OUT"

echo "wrote $OUT:"
cat "$OUT"
