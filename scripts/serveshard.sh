#!/bin/sh
# serveshard.sh — CI gate for sharded serving host scaling: on a host with
# at least 4 cores, one serving scheme at -shards 4 must finish in at most
# half the wall-clock of the same deployment at -shards 1. Each shard is a
# whole independent simulated machine run as a workpool job, so four shards
# on four cores should approach 4x; 2x is the regression bar. A single
# scheme is measured on purpose: the all-scheme grid already fans schemes
# out across the pool, which would mask shard-level scaling.
#
# The merged simulated results are pinned bit-identical across shard
# placement by the test suite (TestServeShardedDeterministicAcrossHost-
# Parallelism); this gate guards only the host-side win.
#
# Hosts with fewer than 4 cores skip cleanly: four shard jobs cannot outrun
# one machine without cores to run them on.
#
# Usage: scripts/serveshard.sh [scale]   (default 0.004)
set -eu
cd "$(dirname "$0")/.."

SCALE="${1:-0.004}"
TMP="${TMPDIR:-/tmp}"
CORES=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)

if [ "$CORES" -lt 4 ]; then
	echo "serveshard: host has $CORES cpu(s), need 4 for the 2x shard-scaling bar — skipping"
	exit 0
fi

go build -o "$TMP/ffccd-serveshard" ./cmd/ffccd-bench

host_seconds() { # smallest host_seconds across the file's repetitions
	grep -o '"host_seconds": [0-9.eE+-]*' "$1" | awk -F': ' '
		NR == 1 || $2 < min { min = $2 } END { print min }'
}

FFCCD_PARALLEL=4 "$TMP/ffccd-serveshard" -experiment serving -scheme ffccd \
	-scale "$SCALE" -shards 1 -json "$TMP/serveshard_s1.json" >/dev/null
FFCCD_PARALLEL=4 "$TMP/ffccd-serveshard" -experiment serving -scheme ffccd \
	-scale "$SCALE" -shards 4 -json "$TMP/serveshard_s4.json" >/dev/null

S1=$(host_seconds "$TMP/serveshard_s1.json")
S4=$(host_seconds "$TMP/serveshard_s4.json")

echo "serveshard: serving/ffccd scale $SCALE — shards=1 ${S1}s, shards=4 ${S4}s"
if ! awk -v a="$S1" -v b="$S4" 'BEGIN { exit !(b * 2 <= a) }'; then
	echo "serveshard: FAIL — shards=4 is not 2x faster than shards=1 on $CORES cores" >&2
	exit 1
fi
echo "serveshard OK"
