// bench_gate compares the two newest BENCH_<n>.json host-performance
// records in the repository root and fails when the newer one regresses:
//
//   - any sim_cycles_total drift, within a file (rows of the same
//     experiment+scale must agree — span, fork and parallelism change
//     wall-clock only) or between the two files for matching
//     experiment+scale rows. Simulated cycles are the repo's correctness
//     currency; a drift here is a behaviour change, never noise.
//   - a >15% host_seconds regression for a matching configuration
//     (experiment, scale, parallel, ffccd_parallel, fork, span), compared
//     min-across-repeats and only when both rows ran on the same
//     host_cores — wall-clock on different machines is not comparable.
//     FFCCD_BENCHGATE_TOL overrides the tolerance (e.g. 0.30 on noisy CI).
//
// With fewer than two BENCH files the gate prints a notice and exits 0, so
// `make check` works on a fresh clone. Rows only one file has (new
// experiments, paper-scale rows skipped via FFCCD_BENCH_PAPER=0) are
// ignored: the gate compares what both files measured.
//
// Usage: go run ./scripts/bench_gate [old.json new.json]
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

type record struct {
	Experiment    string             `json:"experiment"`
	Scale         float64            `json:"scale"`
	Parallel      int                `json:"parallel"`
	Shards        int                `json:"shards"`
	HostCores     int                `json:"host_cores"`
	FFCCDParallel int                `json:"ffccd_parallel"`
	Fork          bool               `json:"fork"`
	Span          bool               `json:"span"`
	HostSeconds   float64            `json:"host_seconds"`
	Repeat        int                `json:"repeat"`
	Metrics       map[string]float64 `json:"metrics"`
}

// simKey groups rows whose simulated results must be bit-identical. Shards
// joins in because an N-shard deployment is a different simulated machine
// set — its cycle totals legitimately differ from the unsharded run's.
func (r record) simKey() string {
	return fmt.Sprintf("%s/scale=%g/shards=%d", r.Experiment, r.Scale, r.Shards)
}

// hostKey groups rows whose wall-clock is comparable like-for-like.
func (r record) hostKey() string {
	return fmt.Sprintf("%s/scale=%g/shards=%d/parallel=%d/ffccd_parallel=%d/fork=%t/span=%t",
		r.Experiment, r.Scale, r.Shards, r.Parallel, r.FFCCDParallel, r.Fork, r.Span)
}

func load(path string) ([]record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []record
	if err := json.Unmarshal(b, &recs); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return recs, nil
}

// simTotals returns sim_cycles_total per simKey, reporting within-file
// drift through fail. Rows without the metric (old files predating it)
// are skipped.
func simTotals(path string, recs []record, fail func(string, ...any)) map[string]float64 {
	totals := map[string]float64{}
	for _, r := range recs {
		sc, ok := r.Metrics["sim_cycles_total"]
		if !ok {
			continue
		}
		if prev, seen := totals[r.simKey()]; seen && prev != sc {
			fail("%s: %s: sim_cycles_total drifts WITHIN the file (%.0f vs %.0f)",
				path, r.simKey(), prev, sc)
			continue
		}
		totals[r.simKey()] = sc
	}
	return totals
}

// hostMins returns the fastest repeat per hostKey plus the host_cores it
// ran on (rows of one key share host_cores; bench.sh writes them in one
// process).
func hostMins(recs []record) map[string]record {
	mins := map[string]record{}
	for _, r := range recs {
		if best, ok := mins[r.hostKey()]; !ok || r.HostSeconds < best.HostSeconds {
			mins[r.hostKey()] = r
		}
	}
	return mins
}

func benchFiles(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		path string
	}
	var files []numbered
	for _, m := range matches {
		base := filepath.Base(m)
		numStr := strings.TrimSuffix(strings.TrimPrefix(base, "BENCH_"), ".json")
		n, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		files = append(files, numbered{n, m})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].n < files[j].n })
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.path
	}
	return out, nil
}

func main() {
	var oldPath, newPath string
	switch len(os.Args) {
	case 1:
		files, err := benchFiles(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench_gate:", err)
			os.Exit(1)
		}
		if len(files) < 2 {
			fmt.Printf("bench_gate: %d BENCH_*.json file(s) found, need 2 to compare; skipping\n", len(files))
			return
		}
		oldPath, newPath = files[len(files)-2], files[len(files)-1]
	case 3:
		oldPath, newPath = os.Args[1], os.Args[2]
	default:
		fmt.Fprintln(os.Stderr, "usage: bench_gate [old.json new.json]")
		os.Exit(2)
	}

	tol := 0.15
	if env := os.Getenv("FFCCD_BENCHGATE_TOL"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil || v < 0 {
			fmt.Fprintf(os.Stderr, "bench_gate: bad FFCCD_BENCHGATE_TOL %q\n", env)
			os.Exit(2)
		}
		tol = v
	}

	// Name the pair up front: on failure the message below names only the
	// offending key, and knowing WHICH two records disagreed is the first
	// thing a triage needs.
	fmt.Printf("bench_gate: comparing %s (old) vs %s (new)\n",
		filepath.Base(oldPath), filepath.Base(newPath))

	oldRecs, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_gate:", err)
		os.Exit(1)
	}
	newRecs, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_gate:", err)
		os.Exit(1)
	}

	failed := false
	fail := func(format string, args ...any) {
		fmt.Printf("bench_gate FAIL: "+format+"\n", args...)
		failed = true
	}

	oldSim := simTotals(oldPath, oldRecs, fail)
	newSim := simTotals(newPath, newRecs, fail)
	simKeys := 0
	for key, oldTotal := range oldSim {
		newTotal, ok := newSim[key]
		if !ok {
			continue
		}
		simKeys++
		if newTotal != oldTotal {
			fail("%s: sim_cycles_total drifted %.0f -> %.0f (simulated behaviour changed)",
				key, oldTotal, newTotal)
		}
	}

	oldHost := hostMins(oldRecs)
	newHost := hostMins(newRecs)
	hostKeys := 0
	for key, o := range oldHost {
		n, ok := newHost[key]
		if !ok || n.HostCores != o.HostCores {
			continue // new experiment, skipped row, or different machine
		}
		hostKeys++
		if n.HostSeconds > o.HostSeconds*(1+tol) {
			fail("%s: host_seconds regressed %.2fs -> %.2fs (+%.0f%%, tolerance %.0f%%; set FFCCD_BENCHGATE_TOL to override)",
				key, o.HostSeconds, n.HostSeconds,
				100*(n.HostSeconds/o.HostSeconds-1), 100*tol)
		}
	}

	if failed {
		os.Exit(1)
	}
	fmt.Printf("bench_gate OK: %s vs %s — %d sim keys identical, %d host configs within %.0f%%\n",
		filepath.Base(oldPath), filepath.Base(newPath), simKeys, hostKeys, 100*tol)
}
