// ffccd-bench regenerates the paper's tables and figures on the simulated
// machine.
//
// Usage:
//
//	ffccd-bench -experiment all            # everything (slow)
//	ffccd-bench -experiment table3 -scale 0.004
//	ffccd-bench -experiment fig5 -parallel 8 -json BENCH.json
//	ffccd-bench -list
//
// Experiments: fig1, fig5, table3, fig14, table4, fig15, fig16, table1,
// table2, ablation-rbb, ablation-pmft.
//
// Every run is hermetic (its own simulated machine), so -parallel only
// changes host wall-clock — simulated cycle totals are identical at any
// worker count. -json appends one machine-readable record per experiment
// (host seconds plus the experiment's simulated-cycle metrics) to a file,
// for tracking host performance across revisions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ffccd/internal/experiments"
)

// benchRecord is one -json entry: host-side timing plus whatever simulated
// metrics the experiment exposes. Simulated numbers must be identical across
// revisions (see the golden test); host_seconds is the number being tracked.
type benchRecord struct {
	Experiment  string             `json:"experiment"`
	Scale       float64            `json:"scale"`
	Parallel    int                `json:"parallel"`
	HostSeconds float64            `json:"host_seconds"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	experiment := flag.String("experiment", "all", "experiment id (or 'all')")
	scale := flag.Float64("scale", 0.002, "workload scale relative to the paper's 5M-insert setup")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvDir := flag.String("csv", "", "also write plot-ready CSV files into this directory")
	parallel := flag.Int("parallel", 0, "experiment-driver worker count (0 = GOMAXPROCS or $FFCCD_PARALLEL)")
	jsonPath := flag.String("json", "", "write machine-readable benchmark records to this file")
	flag.Parse()

	if *parallel > 0 {
		experiments.SetParallelism(*parallel)
	}

	type exp struct {
		id  string
		run func() (fmt.Stringer, error)
	}
	all := []exp{
		{"table1", func() (fmt.Stringer, error) { return str(experiments.Table1()), nil }},
		{"table2", func() (fmt.Stringer, error) { return str(experiments.Table2()), nil }},
		{"fig1", func() (fmt.Stringer, error) { r, err := experiments.Figure1(*scale); return r, err }},
		{"fig5", func() (fmt.Stringer, error) { r, err := experiments.Figure5(*scale); return r, err }},
		{"table3", func() (fmt.Stringer, error) { r, err := experiments.Table3(*scale); return r, err }},
		{"fig14", func() (fmt.Stringer, error) { r, err := experiments.Figure14(*scale); return r, err }},
		{"table4", func() (fmt.Stringer, error) { r, err := experiments.Table4(*scale); return r, err }},
		{"fig15", func() (fmt.Stringer, error) { r, err := experiments.Figure15(*scale); return r, err }},
		{"fig16", func() (fmt.Stringer, error) { r, err := experiments.Figure16(*scale); return r, err }},
		{"ablation-rbb", func() (fmt.Stringer, error) {
			r, err := experiments.AblationRBB(*scale, []int{1, 4, 8, 32})
			return r, err
		}},
		{"ablation-pmft", func() (fmt.Stringer, error) { r, err := experiments.AblationPMFT(*scale); return r, err }},
		{"ablation-writes", func() (fmt.Stringer, error) { r, err := experiments.AblationWrites(*scale); return r, err }},
	}

	if *list {
		for _, e := range all {
			fmt.Println(e.id)
		}
		return
	}

	ran := 0
	var records []benchRecord
	for _, e := range all {
		if *experiment != "all" && *experiment != e.id {
			continue
		}
		ran++
		start := time.Now()
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		elapsed := time.Since(start).Seconds()
		fmt.Printf("==== %s (scale %g, %.1fs) ====\n%s\n", e.id, *scale, elapsed, out)
		rec := benchRecord{
			Experiment:  e.id,
			Scale:       *scale,
			Parallel:    experiments.Parallelism(),
			HostSeconds: elapsed,
		}
		if m, ok := out.(interface{ Metrics() map[string]float64 }); ok {
			rec.Metrics = m.Metrics()
		}
		records = append(records, rec)
		if *csvDir != "" {
			if c, ok := out.(interface{ CSV() string }); ok {
				path := fmt.Sprintf("%s/%s.csv", *csvDir, e.id)
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "csv %s: %v\n", path, err)
				} else {
					fmt.Printf("(csv written to %s)\n", path)
				}
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *experiment)
		os.Exit(2)
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("(benchmark records written to %s)\n", *jsonPath)
	}
}

type str string

func (s str) String() string { return string(s) }
