// ffccd-bench regenerates the paper's tables and figures on the simulated
// machine.
//
// Usage:
//
//	ffccd-bench -experiment all            # everything (slow)
//	ffccd-bench -experiment table3 -scale 0.004
//	ffccd-bench -list
//
// Experiments: fig1, fig5, table3, fig14, table4, fig15, fig16, table1,
// table2, ablation-rbb, ablation-pmft.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ffccd/internal/experiments"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (or 'all')")
	scale := flag.Float64("scale", 0.002, "workload scale relative to the paper's 5M-insert setup")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvDir := flag.String("csv", "", "also write plot-ready CSV files into this directory")
	flag.Parse()

	type exp struct {
		id  string
		run func() (fmt.Stringer, error)
	}
	all := []exp{
		{"table1", func() (fmt.Stringer, error) { return str(experiments.Table1()), nil }},
		{"table2", func() (fmt.Stringer, error) { return str(experiments.Table2()), nil }},
		{"fig1", func() (fmt.Stringer, error) { r, err := experiments.Figure1(*scale); return r, err }},
		{"fig5", func() (fmt.Stringer, error) { r, err := experiments.Figure5(*scale); return r, err }},
		{"table3", func() (fmt.Stringer, error) { r, err := experiments.Table3(*scale); return r, err }},
		{"fig14", func() (fmt.Stringer, error) { r, err := experiments.Figure14(*scale); return r, err }},
		{"table4", func() (fmt.Stringer, error) { r, err := experiments.Table4(*scale); return r, err }},
		{"fig15", func() (fmt.Stringer, error) { r, err := experiments.Figure15(*scale); return r, err }},
		{"fig16", func() (fmt.Stringer, error) { r, err := experiments.Figure16(*scale); return r, err }},
		{"ablation-rbb", func() (fmt.Stringer, error) {
			r, err := experiments.AblationRBB(*scale, []int{1, 4, 8, 32})
			return r, err
		}},
		{"ablation-pmft", func() (fmt.Stringer, error) { r, err := experiments.AblationPMFT(*scale); return r, err }},
		{"ablation-writes", func() (fmt.Stringer, error) { r, err := experiments.AblationWrites(*scale); return r, err }},
	}

	if *list {
		for _, e := range all {
			fmt.Println(e.id)
		}
		return
	}

	ran := 0
	for _, e := range all {
		if *experiment != "all" && *experiment != e.id {
			continue
		}
		ran++
		start := time.Now()
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (scale %g, %.1fs) ====\n%s\n", e.id, *scale, time.Since(start).Seconds(), out)
		if *csvDir != "" {
			if c, ok := out.(interface{ CSV() string }); ok {
				path := fmt.Sprintf("%s/%s.csv", *csvDir, e.id)
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "csv %s: %v\n", path, err)
				} else {
					fmt.Printf("(csv written to %s)\n", path)
				}
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *experiment)
		os.Exit(2)
	}
}

type str string

func (s str) String() string { return string(s) }
