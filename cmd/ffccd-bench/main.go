// ffccd-bench regenerates the paper's tables and figures on the simulated
// machine.
//
// Usage:
//
//	ffccd-bench -experiment all            # everything (slow)
//	ffccd-bench -experiment table3 -scale 0.004
//	ffccd-bench -experiment fig5 -parallel 8 -json BENCH.json
//	ffccd-bench -list
//
// Experiments: fig1, fig5, table3, fig14, table4, fig15, fig16, table1,
// table2, ablation-rbb, ablation-pmft.
//
// Every run is hermetic (its own simulated machine), so -parallel only
// changes host wall-clock — simulated cycle totals are identical at any
// worker count. -json appends one machine-readable record per experiment
// (host seconds plus the experiment's simulated-cycle metrics) to a file,
// for tracking host performance across revisions.
//
// Observability (simulated cycle totals stay bit-identical either way):
//
//	ffccd-bench -experiment fig14 -trace out.json   # Perfetto-loadable trace
//	ffccd-bench -experiment fig5 -trace-ring 256 -trace ring.json
//	ffccd-bench -experiment all -httpobs localhost:6060  # expvar + pprof + OpenMetrics /metrics
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"ffccd/internal/experiments"
	"ffccd/internal/obsv"
	"ffccd/internal/pmem"
)

// benchRecord is one -json entry: host-side timing plus whatever simulated
// metrics the experiment exposes. Simulated numbers must be identical across
// revisions (see the golden test); host_seconds is the number being tracked.
type benchRecord struct {
	Experiment string  `json:"experiment"`
	Scale      float64 `json:"scale"`
	Parallel   int     `json:"parallel"`
	// Shards is the serving experiment's simulated-machine count (-shards;
	// omitted for unsharded rows). Rows at different shard counts are
	// different simulated deployments, so the bench gate compares them
	// separately.
	Shards int `json:"shards,omitempty"`
	// HostCores and FFCCDParallel pin the host context every row was
	// measured under: the machine's logical CPU count and the effective
	// worker-pool size (FFCCD_PARALLEL / -parallel resolved). Scaling
	// comparisons across rows are meaningless without both.
	HostCores     int     `json:"host_cores"`
	FFCCDParallel int     `json:"ffccd_parallel"`
	Fork          bool    `json:"fork"`
	Span          bool    `json:"span"`
	HostSeconds   float64 `json:"host_seconds"`
	Repeat        int     `json:"repeat,omitempty"`
	// Fork-driver counters for this experiment (zero when -fork=false or
	// the experiment has no scheme groups to share a prefix across).
	// fork_checkpoint_bytes is what the dirty-page checkpoints actually
	// captured; fork_media_bytes what full-image copies of the same devices
	// would have moved — their ratio is the sparse-checkpoint win.
	ForkPrefixes        uint64 `json:"fork_prefixes,omitempty"`
	ForkCheckpoints     uint64 `json:"fork_checkpoints,omitempty"`
	ForkRuns            uint64 `json:"fork_runs,omitempty"`
	ForkCheckpointBytes uint64 `json:"fork_checkpoint_bytes,omitempty"`
	ForkMediaBytes      uint64 `json:"fork_media_bytes,omitempty"`
	// fork_restore_seconds: cumulative host time forked runs spent
	// restoring machines from checkpoints. With the counter-based workload
	// RNG this is constant in scale (O(1) draw repositioning), where the
	// old draw-and-discard skip grew linearly with the prefix length.
	ForkRestoreSeconds float64            `json:"fork_restore_seconds,omitempty"`
	Metrics            map[string]float64 `json:"metrics,omitempty"`
	// TraceMode records whether observability collection was on for this
	// repetition ("full" or "ring"); absent means tracing disabled, i.e.
	// the row measures the zero-overhead-when-disabled configuration.
	TraceMode string `json:"trace_mode,omitempty"`
	// Obs carries the flattened observability summary (histogram
	// percentiles, counter groups, trace event counts) when -trace or
	// -httpobs enabled per-run collection for this repetition.
	Obs map[string]float64 `json:"obs,omitempty"`
	// Windows carries the per-window time series (keyed by scheme) for
	// experiments that expose one — the serving experiment's per-window SLO
	// rows with worst-request exemplars.
	Windows map[string][]obsv.WindowSnap `json:"windows,omitempty"`
}

func main() {
	experiment := flag.String("experiment", "all", "experiment id (or 'all')")
	scaleArg := flag.String("scale", "0.002", "workload scale relative to the paper's 5M-insert setup ('paper' = 1.0)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvDir := flag.String("csv", "", "also write plot-ready CSV files into this directory")
	parallel := flag.Int("parallel", 0, "experiment-driver worker count (0 = GOMAXPROCS or $FFCCD_PARALLEL)")
	jsonPath := flag.String("json", "", "write machine-readable benchmark records to this file")
	fork := flag.Bool("fork", true, "share checkpointed workload prefixes across a cell's schemes (host optimisation; simulated results are bit-identical either way)")
	span := flag.Bool("span", true, "use the span-aware multi-line device fast path (host optimisation; simulated results are bit-identical either way)")
	repeat := flag.Int("repeat", 1, "run each experiment N times, recording every repetition (host-time variance)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON (open in ui.perfetto.dev) of every run's defrag phases to this file")
	traceRing := flag.Int("trace-ring", 0, "flight-recorder mode: keep only the newest N events per simulated thread (0 = full trace)")
	httpObs := flag.String("httpobs", "", "serve expvar metrics (/debug/vars) and pprof (/debug/pprof) on this address while experiments run")
	shards := flag.Int("shards", 1, "serving experiment: shard the keyspace across N independent simulated machines")
	scheme := flag.String("scheme", "", "serving experiment: run only this defrag scheme (none|ffccd|stw|mesh; empty = all)")
	flag.Parse()

	scaleVal, err := parseScale(*scaleArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "-scale: %v\n", err)
		os.Exit(2)
	}
	scale := &scaleVal

	if *parallel > 0 {
		experiments.SetParallelism(*parallel)
	}
	experiments.SetFork(*fork)
	pmem.SetSpanPathDefault(*span)
	if *repeat < 1 {
		*repeat = 1
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	obsEnabled := *tracePath != "" || *httpObs != ""
	var latestCol atomic.Pointer[obsv.Collector]
	if *httpObs != "" {
		// expvar and net/http/pprof register themselves on DefaultServeMux;
		// ffccd_obs exposes the most recent repetition's merged summary.
		expvar.Publish("ffccd_obs", expvar.Func(func() any {
			if c := latestCol.Load(); c != nil {
				return c.MetricsSummary()
			}
			return map[string]float64{}
		}))
		// /metrics: the most recent repetition's collection in OpenMetrics
		// text format (histogram summaries, counter groups, per-window series
		// with worst-request exemplars).
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			c := latestCol.Load()
			if c == nil {
				http.Error(w, "no collection yet", http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			if err := c.WriteOpenMetrics(w); err != nil {
				fmt.Fprintf(os.Stderr, "httpobs /metrics: %v\n", err)
			}
		})
		go func() {
			if err := http.ListenAndServe(*httpObs, nil); err != nil {
				fmt.Fprintf(os.Stderr, "httpobs: %v\n", err)
			}
		}()
		fmt.Printf("(observability server on http://%s/debug/vars and /debug/pprof)\n", *httpObs)
	}
	var traceCols []*obsv.Collector

	type exp struct {
		id  string
		run func() (fmt.Stringer, error)
	}
	all := []exp{
		{"table1", func() (fmt.Stringer, error) { return str(experiments.Table1()), nil }},
		{"table2", func() (fmt.Stringer, error) { return str(experiments.Table2()), nil }},
		{"fig1", func() (fmt.Stringer, error) { r, err := experiments.Figure1(*scale); return r, err }},
		{"fig5", func() (fmt.Stringer, error) { r, err := experiments.Figure5(*scale); return r, err }},
		{"table3", func() (fmt.Stringer, error) { r, err := experiments.Table3(*scale); return r, err }},
		{"fig14", func() (fmt.Stringer, error) { r, err := experiments.Figure14(*scale); return r, err }},
		{"table4", func() (fmt.Stringer, error) { r, err := experiments.Table4(*scale); return r, err }},
		{"fig15", func() (fmt.Stringer, error) { r, err := experiments.Figure15(*scale); return r, err }},
		{"fig16", func() (fmt.Stringer, error) { r, err := experiments.Figure16(*scale); return r, err }},
		{"serving", func() (fmt.Stringer, error) {
			o := experiments.ServingOptions{Scale: *scale, Shards: *shards}
			if *scheme != "" {
				o.Schemes = []string{*scheme}
			}
			r, err := experiments.Serving(o)
			return r, err
		}},
		{"ablation-rbb", func() (fmt.Stringer, error) {
			r, err := experiments.AblationRBB(*scale, []int{1, 4, 8, 32})
			return r, err
		}},
		{"ablation-pmft", func() (fmt.Stringer, error) { r, err := experiments.AblationPMFT(*scale); return r, err }},
		{"ablation-writes", func() (fmt.Stringer, error) { r, err := experiments.AblationWrites(*scale); return r, err }},
	}

	if *list {
		for _, e := range all {
			fmt.Println(e.id)
		}
		return
	}

	ran := 0
	var records []benchRecord
	for _, e := range all {
		if *experiment != "all" && *experiment != e.id {
			continue
		}
		ran++
		for rep := 1; rep <= *repeat; rep++ {
			experiments.ResetForkCounters()
			var col *obsv.Collector
			if obsEnabled {
				col = obsv.NewCollector(*traceRing)
				experiments.SetObsCollector(col)
				latestCol.Store(col)
			}
			start := time.Now()
			out, err := e.run()
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
				os.Exit(1)
			}
			elapsed := time.Since(start).Seconds()
			fmt.Printf("==== %s (scale %g, %.1fs) ====\n%s\n", e.id, *scale, elapsed, out)
			rec := benchRecord{
				Experiment:    e.id,
				Scale:         *scale,
				Parallel:      experiments.Parallelism(),
				Shards:        shardsFor(e.id, *shards),
				HostCores:     runtime.NumCPU(),
				FFCCDParallel: experiments.Parallelism(),
				Fork:          experiments.ForkEnabled(),
				Span:          *span,
				HostSeconds:   elapsed,
			}
			if *repeat > 1 {
				rec.Repeat = rep
			}
			rec.ForkPrefixes, rec.ForkCheckpoints, rec.ForkRuns = experiments.ForkCounters()
			rec.ForkCheckpointBytes, rec.ForkMediaBytes = experiments.ForkCheckpointBytes()
			rec.ForkRestoreSeconds = experiments.ForkRestoreSeconds()
			if m, ok := out.(interface{ Metrics() map[string]float64 }); ok {
				rec.Metrics = m.Metrics()
			}
			if wf, ok := out.(interface {
				BenchWindows() map[string][]obsv.WindowSnap
			}); ok {
				if w := wf.BenchWindows(); len(w) > 0 {
					rec.Windows = w
				}
			}
			if col != nil {
				experiments.SetObsCollector(nil)
				rec.Obs = col.MetricsSummary()
				rec.TraceMode = "full"
				if *traceRing > 0 {
					rec.TraceMode = "ring"
				}
				if *tracePath != "" {
					traceCols = append(traceCols, col)
				}
			}
			records = append(records, rec)
			if *csvDir != "" && rep == 1 {
				if c, ok := out.(interface{ CSV() string }); ok {
					path := fmt.Sprintf("%s/%s.csv", *csvDir, e.id)
					if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
						fmt.Fprintf(os.Stderr, "csv %s: %v\n", path, err)
					} else {
						fmt.Printf("(csv written to %s)\n", path)
					}
				}
			}
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *experiment)
		os.Exit(2)
	}
	if *tracePath != "" && len(traceCols) > 0 {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace %s: %v\n", *tracePath, err)
			os.Exit(1)
		}
		werr := obsv.WriteChromeTraceAll(f, traceCols...)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "trace %s: %v\n", *tracePath, werr)
			os.Exit(1)
		}
		fmt.Printf("(chrome trace written to %s — open in https://ui.perfetto.dev)\n", *tracePath)
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("(benchmark records written to %s)\n", *jsonPath)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}

// shardsFor reports the shard count to record for an experiment: only the
// serving experiment honours -shards, and unsharded rows omit the field.
func shardsFor(id string, shards int) int {
	if id == "serving" && shards > 1 {
		return shards
	}
	return 0
}

// parseScale resolves the -scale argument: a float, or the shorthand
// "paper" for 1.0 (the paper's full 5M-insert setup).
func parseScale(s string) (float64, error) {
	if s == "paper" {
		return 1.0, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("want a positive number or 'paper', got %q", s)
	}
	return v, nil
}

type str string

func (s str) String() string { return string(s) }
