// ffccd-trace generates, inspects and replays operation traces (the
// WHISPER-style workload methodology): a trace replayed against any store
// reproduces an identical allocation and fragmentation history, so scheme
// comparisons are exact.
//
//	ffccd-trace gen -ops 100000 -keys 20000 -out w.trace
//	ffccd-trace info -in w.trace
//	ffccd-trace replay -in w.trace -store BT -scheme ffccd+cl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ffccd/internal/checker"
	"ffccd/internal/core"
	"ffccd/internal/experiments"
	"ffccd/internal/trace"
	"ffccd/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ffccd-trace {gen|info|replay} [flags]")
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	ops := fs.Int("ops", 100000, "operations")
	keys := fs.Uint64("keys", 20000, "key space")
	minv := fs.Int("min", 64, "min value bytes")
	maxv := fs.Int("max", 256, "max value bytes")
	ins := fs.Int("insert", 55, "insert percentage")
	del := fs.Int("delete", 25, "delete percentage")
	seed := fs.Int64("seed", 1, "seed")
	out := fs.String("out", "workload.trace", "output file")
	fs.Parse(args)

	t := trace.Generate(trace.GenerateConfig{
		Ops: *ops, KeySpace: *keys, MinVal: *minv, MaxVal: *maxv,
		InsertPct: *ins, DeletePct: *del, Seed: *seed,
	})
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d records to %s\n", len(t.Records), *out)
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "workload.trace", "trace file")
	fs.Parse(args)
	t := load(*in)
	var ins, del, get int
	var bytes uint64
	for _, r := range t.Records {
		switch r.Op {
		case trace.OpInsert:
			ins++
			bytes += uint64(r.Size)
		case trace.OpDelete:
			del++
		default:
			get++
		}
	}
	fmt.Printf("%s: %d records (%d insert / %d delete / %d get), %.1f MB inserted, %d final keys\n",
		*in, len(t.Records), ins, del, get, float64(bytes)/(1<<20), len(t.Model()))
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "workload.trace", "trace file")
	store := fs.String("store", "LL", "store (LL/AVL/SS/BT/RBT/BzTree/FPTree/Echo/pmemkv)")
	schemeName := fs.String("scheme", "none", "defrag scheme (none/espresso/sfccd/ffccd/ffccd+cl)")
	fs.Parse(args)
	t := load(*in)

	scheme := map[string]core.Scheme{
		"none": core.SchemeNone, "espresso": core.SchemeEspresso, "sfccd": core.SchemeSFCCD,
		"ffccd": core.SchemeFFCCD, "ffccd+cl": core.SchemeFFCCDCheckLookup,
	}[*schemeName]

	env, err := experiments.NewEnv(512<<20, 12)
	if err != nil {
		log.Fatal(err)
	}
	s, err := experiments.BuildStore(env.Ctx, env.Pool, *store, workload.Config{InitInserts: len(t.Model()) + 64})
	if err != nil {
		log.Fatal(err)
	}
	var eng *core.Engine
	if scheme != core.SchemeNone {
		opt := core.DefaultOptions()
		opt.Scheme = scheme
		opt.AutoTrigger = true
		eng = core.NewEngine(env.Pool, opt)
	}
	st, err := trace.Replay(env.Ctx, s, t)
	if err != nil {
		log.Fatal(err)
	}
	if eng != nil {
		eng.Close()
	}
	frag := env.Pool.Heap().Frag(12)
	fmt.Printf("replayed %d ops (%d/%d/%d ins/del/get) in %.2f Mcycles\n",
		len(t.Records), st.Inserts, st.Deletes, st.Gets, float64(st.Cycles)/1e6)
	fmt.Printf("footprint %.2f MB, live %.2f MB, fragR %.2f\n",
		float64(frag.FootprintBytes)/(1<<20), float64(frag.LiveBytes)/(1<<20), frag.FragRatio)
	if eng != nil {
		es := eng.Stats()
		fmt.Printf("defrag: %d cycles, %d objects moved, %d frames released\n",
			es.Cycles, es.ObjectsMoved, es.FramesReleased)
	}
	if err := checker.CheckStore(env.Ctx, s, t.Model()); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	if _, err := checker.CheckGraph(env.Ctx, env.Pool); err != nil {
		log.Fatalf("graph check failed: %v", err)
	}
	fmt.Println("verification: store matches the trace model; graph consistent")
}

func load(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	t, err := trace.Read(f)
	if err != nil {
		log.Fatal(err)
	}
	return t
}
