// ffccd-inspect builds a demonstration pool, optionally crashes it mid-
// defragmentation, and prints a forensic dump of the persistent state: pool
// geometry, fragmentation, defragmentation phase word, PMFT entries, frame
// occupancy histogram, and a reachability summary. It demonstrates the kind
// of offline inspection the persistent metadata layout makes possible (every
// structure recovery relies on is readable from the media image alone).
//
//	ffccd-inspect             # clean pool
//	ffccd-inspect -crash      # crash mid-epoch first, inspect the wreckage
//	ffccd-inspect -timeline   # serving-path tail timeline, FFCCD vs STW
//
// Every run records a cycle-domain phase timeline (printed at the end). With
// -crash the tracer runs in flight-recorder mode: a bounded ring of the
// newest events per simulated thread, dumped at the instant of the fault —
// the pre-crash forensics a real PM module's debug port would give you.
//
// -timeline runs the open-loop serving simulation for FFCCD and the
// stop-the-world comparator and renders their per-window p999 series with
// defrag-epoch/STW-pause overlays, so the tail spikes line up visually
// against the GC phases that caused them. Adding -crash-at injects one
// power failure per scheme at that fraction of its crash-site census and
// renders the recovery blackout (R) and retry-backoff (B) overlays too:
//
//	ffccd-inspect -timeline -crash-at 0.5
//
// -shards N renders the timeline of a sharded deployment: one lane per
// simulated machine (its own clock domain and GC overlays) followed by the
// deterministic virtual-time merge of all lanes:
//
//	ffccd-inspect -timeline -shards 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ffccd"
	"ffccd/internal/alloc"
	"ffccd/internal/checker"
	"ffccd/internal/experiments"
	"ffccd/internal/obsv"
	"ffccd/internal/stats"
)

func main() {
	crash := flag.Bool("crash", false, "crash mid-defragmentation before inspecting")
	keys := flag.Int("keys", 8000, "list entries to populate")
	flightrec := flag.Int("flightrec", 64, "flight-recorder ring capacity per simulated thread for -crash runs")
	timeline := flag.Bool("timeline", false, "render the serving-path tail timeline (FFCCD vs STW) and exit")
	scale := flag.Float64("scale", 0.002, "workload scale for -timeline")
	window := flag.Uint64("window", 0, "-timeline window width in simulated cycles (0 = scale-aware default)")
	crashAt := flag.Float64("crash-at", 0, "-timeline: crash each scheme at this fraction of its site census (0 = no crash)")
	shards := flag.Int("shards", 1, "-timeline: shard the deployment across N simulated machines (per-shard lanes + merged overlay)")
	flag.Parse()

	if *timeline {
		if *crashAt > 0 {
			runCrashTimeline(*crashAt, *window, *shards)
		} else {
			runTimeline(*scale, *window, *shards)
		}
		return
	}

	cfg := ffccd.DefaultConfig()
	rt := ffccd.NewRuntime(&cfg, 256<<20)
	ctx := ffccd.NewCtx(&cfg)
	reg := ffccd.NewRegistry()
	ffccd.RegisterStoreTypes(reg)
	pool, err := rt.Create("inspect", 64<<20, ffccd.Page4K, reg)
	if err != nil {
		log.Fatal(err)
	}
	list, _ := ffccd.NewList(ctx, pool)
	for i := uint64(0); i < uint64(*keys); i++ {
		list.Insert(ctx, i, []byte{byte(i), byte(i >> 8)})
	}
	for i := uint64(0); i < uint64(*keys); i += 2 {
		list.Delete(ctx, i)
	}
	pool.Device().FlushAll(ctx)

	// Observability: full trace for clean runs, flight-recorder ring for
	// crash runs (dumped by OnCrash at the fault, before recovery touches
	// anything). Reads simulated clocks, never charges them.
	ring := 0
	if *crash {
		ring = *flightrec
	}
	obs := obsv.New(ring)
	obs.OnCrash = func(o *obsv.Obs) {
		fmt.Println("== power loss: flight-recorder ring at the fault ==")
		if err := obsv.WriteFlightRecorder(os.Stdout, o); err != nil {
			log.Fatal(err)
		}
	}
	obs.Tracer.Name(ctx, "main")
	pool.Device().SetObs(obs)

	opt := ffccd.DefaultEngineOptions()
	opt.Scheme = ffccd.SchemeFFCCD
	opt.TriggerRatio, opt.TargetRatio = 1.05, 1.02
	opt.Obs = obs
	eng := ffccd.NewEngine(pool, opt)
	if *crash {
		if eng.BeginCycle(ctx) {
			eng.StepCompaction(ctx, *keys/4)
			pool.Device().Crash()
			if eng.RBB() != nil {
				eng.RBB().PowerLossFlush()
			}
			fmt.Println("== crashed mid-epoch; inspecting the persistent image ==")
			rt2, err := ffccd.AttachRuntime(&cfg, rt.Device())
			if err != nil {
				log.Fatal(err)
			}
			reg2 := ffccd.NewRegistry()
			ffccd.RegisterStoreTypes(reg2)
			pool, err = rt2.Open("inspect", reg2)
			if err != nil {
				log.Fatal(err)
			}
			dumpPhase(ctx, pool)
			// Recover, then dump the healthy state.
			eng2, err := ffccd.Recover(ctx, pool, opt)
			if err != nil {
				log.Fatal(err)
			}
			defer eng2.Close()
			fmt.Println("\n== after recovery ==")
		}
	} else {
		eng.RunCycle(ctx)
		defer eng.Close()
	}

	dumpPhase(ctx, pool)
	dumpGeometry(pool)
	dumpFragmentation(pool)
	dumpFrames(pool)
	dumpReachability(ctx, pool)

	fmt.Println("\nphase timeline (simulated time):")
	fmt.Print(obsv.TimelineTable(obs))
}

// runTimeline renders the per-window p999 timeline of the serving scenario
// for FFCCD and the STW comparator side by side, with GC overlay marks — the
// terminal version of the paper's tail-interference story.
func runTimeline(scale float64, window uint64, shards int) {
	res, err := experiments.Serving(experiments.ServingOptions{
		Scale:        scale,
		Schemes:      []string{"ffccd", "stw"},
		WindowCycles: window,
		Shards:       shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving tail timeline: %d clients, %d ops, %.0f ops/s offered\n\n",
		res.Clients, res.Ops, res.Rate)
	for _, v := range res.Variants {
		if v.Series == nil {
			continue
		}
		renderShardLanes(v.Name, v.ShardSeries)
		fmt.Print(obsv.RenderTimeline(v.Series, 48))
		if ex, ok := v.Series.WorstExemplar(); ok {
			fmt.Printf("worst request: %s\n", ex)
		}
		ivs := v.Series.Intervals()
		stw, ep := 0, 0
		for _, iv := range ivs {
			switch iv.Kind {
			case obsv.IntervalSTW:
				stw++
			case obsv.IntervalEpoch:
				ep++
			}
		}
		fmt.Printf("overlays: %d stw pauses, %d concurrent epochs\n\n", stw, ep)
	}
}

// runCrashTimeline renders the availability grid's per-window p999 timelines:
// one injected power failure per scheme, with the recovery blackout (R) and
// retry-backoff (B) overlay marks alongside the usual S/E GC overlays.
func runCrashTimeline(frac float64, window uint64, shards int) {
	res, err := experiments.ServingCrash(experiments.ServingCrashOptions{
		SiteFrac:     frac,
		WindowCycles: window,
		Schemes:      []string{"ffccd", "stw"},
		Shards:       shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving crash timeline: %d clients, %d ops, crash at %.0f%% of each scheme's site census\n\n",
		res.Clients, res.Ops, frac*100)
	for _, v := range res.Variants {
		if v.Series == nil {
			continue
		}
		fmt.Printf("%s: crash@%d, resume@%d (blackout %d cycles, first ack +%d, p999 ramp %d cycles)\n",
			v.Name, v.CrashCycle, v.ResumeCycle, v.BlackoutCycles, v.TimeToFirstAck, v.RampCycles)
		if v.Shards > 1 {
			fmt.Printf("%d shards, crash on shard %d; siblings served %d ops during the blackout\n",
				v.Shards, v.CrashShard, v.SiblingOps)
		}
		renderShardLanes(v.Name, v.ShardSeries)
		fmt.Print(obsv.RenderTimeline(v.Series, 48))
		rec, back := 0, 0
		for _, iv := range v.Series.Intervals() {
			switch iv.Kind {
			case obsv.IntervalRecovery:
				rec++
			case obsv.IntervalBackoff:
				back++
			}
		}
		fmt.Printf("overlays: %d recovery blackouts, %d retry backoffs, %d retries, %d rejects\n\n",
			rec, back, v.Retries, v.Rejects)
	}
}

// renderShardLanes prints one timeline lane per shard (each machine's own
// clock domain) ahead of the merged overlay; no-op for unsharded runs.
func renderShardLanes(scheme string, shardSeries []*obsv.TimeSeries) {
	if len(shardSeries) < 2 {
		return
	}
	for s, ts := range shardSeries {
		if ts == nil || ts.Count() == 0 {
			continue
		}
		fmt.Printf("%s shard %d lane:\n", scheme, s)
		fmt.Print(obsv.RenderTimeline(ts, 48))
	}
	fmt.Printf("%s merged (virtual-time union of all lanes):\n", scheme)
}

func dumpPhase(ctx *ffccd.Ctx, p *ffccd.Pool) {
	w := p.GCPhase(ctx)
	state := map[uint64]string{0: "idle", 1: "compacting"}[w&0xFF]
	fmt.Printf("defragmentation phase: %s (scheme=%d epoch=%d)\n", state, w>>8&0xFF, w>>16)
}

func dumpGeometry(p *ffccd.Pool) {
	heapOff, frames := p.HeapRange()
	gcOff, gcSize := p.GCMetaRange()
	t := stats.NewTable("region", "offset", "size")
	t.Add("gc metadata", fmt.Sprintf("%#x", gcOff), fmt.Sprintf("%d KB", gcSize/1024))
	t.Add("object heap", fmt.Sprintf("%#x", heapOff), fmt.Sprintf("%d frames", frames))
	fmt.Print(t)
}

func dumpFragmentation(p *ffccd.Pool) {
	st := p.Heap().Frag(p.PageShift())
	fmt.Printf("footprint %.2f MB, live %.2f MB, fragR %.2f\n",
		float64(st.FootprintBytes)/(1<<20), float64(st.LiveBytes)/(1<<20), st.FragRatio)
}

func dumpFrames(p *ffccd.Pool) {
	hist := map[string]int{}
	occSum, occN := 0, 0
	for _, fi := range p.Heap().Snapshot() {
		name := map[alloc.FrameState]string{
			alloc.FrameActive: "active", alloc.FrameRelocation: "relocation",
			alloc.FrameDestination: "destination", alloc.FrameMeshed: "meshed",
		}[fi.State]
		hist[name]++
		occSum += fi.UsedSlots
		occN++
	}
	t := stats.NewTable("frame state", "count")
	for k, v := range hist {
		t.Add(k, v)
	}
	fmt.Print(t)
	if occN > 0 {
		fmt.Printf("mean occupancy: %.1f%% of slots\n", float64(occSum)/float64(occN)/2.56)
	}
}

func dumpReachability(ctx *ffccd.Ctx, p *ffccd.Pool) {
	st, err := checker.CheckGraph(ctx, p)
	if err != nil {
		fmt.Printf("reachability check FAILED: %v\n", err)
		return
	}
	fmt.Printf("reachable graph: %d objects, %d pointer fields, %.2f MB\n",
		st.Objects, st.PtrFields, float64(st.Bytes)/(1<<20))
}
