// ffccd-crashtest runs the §7.1 crash-consistency validation campaign:
// fault injection at arbitrary points of the concurrent compacting phase
// across the paper's 26 settings, with the two-step post-crash checker.
//
//	ffccd-crashtest -trials 1000            # the paper's full campaign
//	ffccd-crashtest -trials 20 -setting LL/1T/ffccd
//	ffccd-crashtest -trials 1 -setting LL/1T/ffccd -flightrec 32
//
// -flightrec N arms a per-trial flight recorder: the newest N trace events
// per simulated thread are kept in a ring and dumped at the injected crash,
// showing what the machine was doing right before the fault. Intended for
// replaying a single failing trial, not full campaigns (it dumps per trial).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ffccd/internal/faultinject"
	"ffccd/internal/obsv"
)

func main() {
	trials := flag.Int("trials", 100, "fault-injection trials per setting (paper: 1000)")
	setting := flag.String("setting", "", "run only this setting (e.g. LL/1T/ffccd)")
	seed := flag.Int64("seed", 1, "base random seed")
	flightrec := flag.Int("flightrec", 0, "dump a flight-recorder ring of the newest N events per simulated thread at each injected crash (0 = off)")
	flag.Parse()

	if *flightrec > 0 {
		faultinject.SetObsFactory(func(s faultinject.Setting, trialSeed int64) *obsv.Obs {
			o := obsv.New(*flightrec)
			o.OnCrash = func(o *obsv.Obs) {
				fmt.Printf("-- flight recorder at injected crash: %s seed %d --\n", s, trialSeed)
				obsv.WriteFlightRecorder(os.Stdout, o)
			}
			return o
		})
	}

	settings := faultinject.AllSettings()
	failures := 0
	total := 0
	start := time.Now()
	for _, s := range settings {
		if *setting != "" && s.String() != *setting {
			continue
		}
		t0 := time.Now()
		out := faultinject.RunSetting(s, *trials, *seed)
		total += out.Trials
		status := "PASS"
		if out.Passed != out.Trials {
			status = "FAIL"
			failures += out.Trials - out.Passed
		}
		fmt.Printf("%-22s %s  %d/%d trials  (%.1fs)\n", s, status, out.Passed, out.Trials, time.Since(t0).Seconds())
		for i, f := range out.Failures {
			if i >= 3 {
				fmt.Printf("    ... %d more failures\n", len(out.Failures)-3)
				break
			}
			fmt.Printf("    %s\n", f)
		}
	}
	fmt.Printf("\ncampaign: %d trials, %d failures, %.1fs\n", total, failures, time.Since(start).Seconds())
	if failures > 0 {
		os.Exit(1)
	}
}
