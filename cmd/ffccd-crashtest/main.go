// ffccd-crashtest runs the §7.1 crash-consistency validation: fault
// injection during the concurrent compacting phase across the paper's 26
// settings, with the two-step post-crash checker.
//
// Randomized campaign (the original driver — concurrent churn, crash after
// a random number of compaction steps):
//
//	ffccd-crashtest -trials 1000            # the paper's full campaign
//	ffccd-crashtest -trials 20 -setting LL/1T/ffccd
//
// Scheduled campaign (-sites): enumerate every persistence-relevant crash
// site of a deterministic trial, crash at each (sampled down to -max-sites),
// and with -nested also crash a second time inside the recovery that
// follows. Every failure prints a one-line repro command that replays the
// trial bit-identically; -shrink minimizes it first:
//
//	ffccd-crashtest -sites -nested -shrink
//	ffccd-crashtest -sites -setting BzTree/4T/ffccd -max-sites 64
//
// Serving campaign (-serve): the online analogue. Per scheme, a census pass
// under open-loop traffic enumerates the dispatch phase's crash sites, then
// armed trials crash at selected sites and the run continues — recovery,
// durable-ack validation, degraded-mode retry/backoff — to the full op
// budget. Failures print one-line ServeRepro commands; the summary prints
// sites-per-class coverage:
//
//	ffccd-crashtest -serve -max-sites 24 -nested
//	ffccd-crashtest -serve -scheme ffccd -shrink
//
// -serve-shards N runs the serving campaign against an N-shard deployment:
// one census pass yields every shard's site space, each shard is crashed in
// turn while its siblings keep serving, and the coverage line splits counts
// by crash-target shard:
//
//	ffccd-crashtest -serve -serve-shards 4 -max-sites 32
//
// Replay one schedule (the line a failing campaign printed):
//
//	ffccd-crashtest -repro '{"setting":"LL/1T/ffccd","seed":1,...}'
//	ffccd-crashtest -serve -repro '{"scheme":"ffccd","clients":8,...}'
//
// -flightrec N arms a per-trial flight recorder: the newest N trace events
// per simulated thread are kept in a ring and dumped at the injected crash,
// showing what the machine was doing right before the fault. Intended for
// replaying a single failing trial, not full campaigns (it dumps per trial).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ffccd/internal/faultinject"
	"ffccd/internal/obsv"
)

func main() {
	trials := flag.Int("trials", 100, "randomized fault-injection trials per setting (paper: 1000)")
	setting := flag.String("setting", "", "run only this setting (e.g. LL/1T/ffccd)")
	seed := flag.Int64("seed", 1, "base churn seed")
	sites := flag.Bool("sites", false, "run the scheduled campaign: crash at enumerated crash sites instead of random step counts")
	maxSites := flag.Int("max-sites", 128, "scheduled sites per setting (0 = exhaustive; class-first sites always kept)")
	nested := flag.Bool("nested", false, "add crash-during-recovery schedules (scheduled campaign)")
	maxNested := flag.Int("max-nested", 0, "nested schedules per setting (0 = one per first-level site)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-trial watchdog; expiry reports the trial as hung (0 = off)")
	shrink := flag.Bool("shrink", false, "minimize each failing schedule before reporting it")
	parallel := flag.Int("parallel", 0, "worker count for trials (0 = GOMAXPROCS / FFCCD_PARALLEL)")
	repro := flag.String("repro", "", "replay one scheduled trial from its repro line and exit")
	flightrec := flag.Int("flightrec", 0, "dump a flight-recorder ring of the newest N events per simulated thread at each injected crash (0 = off)")
	serve := flag.Bool("serve", false, "run the serving-path campaign (online crash-recovery-resume) instead of the batch campaigns")
	scheme := flag.String("scheme", "all", "serving campaign: scheme to crash (none|ffccd|stw|mesh|all)")
	serveClients := flag.Int("serve-clients", 0, "serving campaign: client connections (0 = default)")
	serveOps := flag.Int("serve-ops", 0, "serving campaign: op budget per trial (0 = default)")
	serveKeys := flag.Int("serve-keys", 0, "serving campaign: keyspace (0 = default)")
	serveShards := flag.Int("serve-shards", 1, "serving campaign: shard the deployment across N simulated machines")
	flag.Parse()

	if *parallel > 0 {
		faultinject.SetParallelism(*parallel)
	}
	var topts faultinject.TrialOptions
	if *flightrec > 0 {
		n := *flightrec
		topts.Obs = func(s faultinject.Setting, trialSeed int64) *obsv.Obs {
			o := obsv.New(n)
			o.OnCrash = func(o *obsv.Obs) {
				fmt.Printf("-- flight recorder at injected crash: %s seed %d --\n", s, trialSeed)
				obsv.WriteFlightRecorder(os.Stdout, o)
			}
			return o
		}
	}

	if *repro != "" {
		if *serve {
			os.Exit(runServeRepro(*repro))
		}
		os.Exit(runRepro(*repro, topts))
	}
	if *serve {
		schemes := faultinject.ServeSchemes
		if *scheme != "all" {
			schemes = []string{*scheme}
		}
		os.Exit(runServeCampaign(schemes, faultinject.ServeCampaignOptions{
			Seed:      *seed,
			Clients:   *serveClients,
			Ops:       *serveOps,
			Keys:      *serveKeys,
			MaxSites:  *maxSites,
			Shards:    *serveShards,
			Nested:    *nested,
			MaxNested: *maxNested,
			Timeout:   *timeout,
			Shrink:    *shrink,
		}))
	}

	settings := faultinject.AllSettings()
	if *setting != "" {
		s, err := faultinject.ParseSetting(*setting)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		settings = []faultinject.Setting{s}
	}
	if *sites {
		os.Exit(runScheduled(settings, faultinject.CampaignOptions{
			Seed:      *seed,
			MaxSites:  *maxSites,
			Nested:    *nested,
			MaxNested: *maxNested,
			Timeout:   *timeout,
			Shrink:    *shrink,
			Trial:     topts,
		}))
	}
	os.Exit(runRandomized(settings, *trials, *seed, topts))
}

// runRandomized is the original random-step campaign.
func runRandomized(settings []faultinject.Setting, trials int, seed int64, topts faultinject.TrialOptions) int {
	failures := 0
	total := 0
	start := time.Now()
	for _, s := range settings {
		t0 := time.Now()
		out := faultinject.RunSettingWith(s, trials, seed, topts)
		total += out.Trials
		status := "PASS"
		if out.Passed != out.Trials {
			status = "FAIL"
			failures += out.Trials - out.Passed
		}
		fmt.Printf("%-22s %s  %d/%d trials  (%.1fs)\n", s, status, out.Passed, out.Trials, time.Since(t0).Seconds())
		for i, f := range out.Failures {
			if i >= 3 {
				fmt.Printf("    ... %d more failures\n", len(out.Failures)-3)
				break
			}
			fmt.Printf("    %s\n", f)
		}
	}
	fmt.Printf("\ncampaign: %d trials, %d failures, %.1fs\n", total, failures, time.Since(start).Seconds())
	if failures > 0 {
		return 1
	}
	return 0
}

// runScheduled is the crash-site exploration campaign.
func runScheduled(settings []faultinject.Setting, co faultinject.CampaignOptions) int {
	failures := 0
	start := time.Now()
	for _, s := range settings {
		t0 := time.Now()
		out := faultinject.ExploreSetting(s, co)
		status := "PASS"
		switch {
		case out.Skipped:
			status = "SKIP (not fragmented)"
		case len(out.Failures) > 0:
			status = "FAIL"
			failures += len(out.Failures)
		}
		fmt.Printf("%-22s %s  %d/%d schedules, %d sites  (%.1fs)\n",
			s, status, out.Passed, out.Scheduled, out.SitesTotal, time.Since(t0).Seconds())
		for i, f := range out.Failures {
			if i >= 3 {
				fmt.Printf("    ... %d more failures\n", len(out.Failures)-3)
				break
			}
			fmt.Printf("    %s\n", f)
		}
	}
	fmt.Printf("\nscheduled campaign: %d failures, %.1fs\n", failures, time.Since(start).Seconds())
	if failures > 0 {
		return 1
	}
	return 0
}

// runServeCampaign is the serving-path crash exploration: one online
// crash-recovery-resume trial per selected site, per scheme.
func runServeCampaign(schemes []string, co faultinject.ServeCampaignOptions) int {
	failures := 0
	start := time.Now()
	for _, scheme := range schemes {
		t0 := time.Now()
		out := faultinject.ExploreServeScheme(scheme, co)
		status := "PASS"
		if len(out.Failures) > 0 {
			status = "FAIL"
			failures += len(out.Failures)
		}
		fmt.Printf("serve/%-6s %s  %d/%d schedules, %d sites  coverage: %s  (%.1fs)\n",
			scheme, status, out.Passed, out.Scheduled, out.SitesTotal,
			out.CoverageString(), time.Since(t0).Seconds())
		for i, f := range out.Failures {
			if i >= 3 {
				fmt.Printf("    ... %d more failures\n", len(out.Failures)-3)
				break
			}
			fmt.Printf("    %s\n", f)
		}
	}
	fmt.Printf("\nserving campaign: %d failures, %.1fs\n", failures, time.Since(start).Seconds())
	if failures > 0 {
		return 1
	}
	return 0
}

// runServeRepro replays one serving schedule and reports the verdict.
func runServeRepro(line string) int {
	rep, err := faultinject.ParseServeRepro(line)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res, err := faultinject.RunServeScheduled(rep, faultinject.ServeTrialOptions{})
	fmt.Printf("schedule: %s\n", rep.MarshalLine())
	fmt.Printf("sites=%d", res.Census.Total)
	if rep.Shards > 1 {
		fmt.Printf(" shards=%d crash_shard=%d", rep.Shards, rep.Shard)
		for s, sc := range res.ShardCensus {
			fmt.Printf(" s%d_sites=%d", s, sc.Total)
		}
	}
	if res.Crash != nil {
		sv := res.Serve
		fmt.Printf(" crash=%q recovery_sites=%d blackout=%d ttfa=%d retries=%d rejects=%d admitted=%d",
			res.Crash.Error(), res.RecoveryCensus.Total, sv.BlackoutCycles,
			sv.TimeToFirstAck, sv.Retries, sv.Rejects, sv.Admitted)
	}
	if res.NestedCrash != nil {
		fmt.Printf(" nested_crash=%q", res.NestedCrash.Error())
	}
	fmt.Printf(" post_crash_hash=%#x final_hash=%#x\n", res.PostCrashHash, res.FinalHash)
	if err != nil {
		fmt.Printf("FAIL: %v\n", err)
		return 1
	}
	fmt.Println("PASS")
	return 0
}

// runRepro replays one schedule and reports the verdict.
func runRepro(line string, topts faultinject.TrialOptions) int {
	rep, err := faultinject.ParseRepro(line)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	res, err := faultinject.RunScheduled(rep, topts)
	fmt.Printf("schedule: %s\n", rep.MarshalLine())
	fmt.Printf("began=%v sites=%d", res.Began, res.Census.Total)
	if res.Crash != nil {
		fmt.Printf(" crash=%q recovery_sites=%d", res.Crash.Error(), res.RecoveryCensus.Total)
	}
	if res.NestedCrash != nil {
		fmt.Printf(" nested_crash=%q", res.NestedCrash.Error())
	}
	fmt.Printf(" post_crash_hash=%#x final_hash=%#x\n", res.PostCrashHash, res.FinalHash)
	if err != nil {
		fmt.Printf("FAIL: %v\n", err)
		return 1
	}
	fmt.Println("PASS")
	return 0
}
