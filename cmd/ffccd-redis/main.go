// ffccd-redis runs the §7.4 Redis case study in one of two modes.
//
// The default (closed-loop) mode prints the Figure 16 footprint-over-time
// series and tail-latency comparison for the PMDK baseline, FFCCD, a
// stop-the-world compactor, and Mesh:
//
//	ffccd-redis -scale 0.002
//
// With -clients the serving mode runs instead: an open-loop multi-client
// simulation (Poisson arrivals, Zipfian keys) against one machine per
// scheme, reporting SLO percentiles (p50/p99/p999) decomposed into app,
// barrier-interference, STW-stall, and queueing cycles:
//
//	ffccd-redis -clients 32 -rate 0 -scheme all        # rate 0 auto-calibrates
//	ffccd-redis -clients 16 -rate 5e6 -scheme ffccd
//	ffccd-redis -clients 16 -scheme stw -ops 100000 -keys 20000
//
// With -crash-at the availability grid runs instead: one power failure per
// scheme at the given fraction of that scheme's crash-site census, with the
// online crash-recovery-resume loop (durable-ack validation, degraded-mode
// admission, retry/backoff) and the post-recovery p999 ramp measured:
//
//	ffccd-redis -crash-at 0.5
//	ffccd-redis -crash-at 0.25 -scheme ffccd -ops 8000 -keys 1600
//
// -shards N partitions the keyspace by key-hash across N independent
// simulated machines (each its own device, heap, and clock domain), runs
// them host-parallel, and merges the per-shard results deterministically.
// It composes with both serving and availability modes; a sharded crash
// blacks out one shard while its siblings keep serving:
//
//	ffccd-redis -clients 32 -shards 4
//	ffccd-redis -crash-at 0.5 -shards 4 -crash-shard 1
package main

import (
	"flag"
	"fmt"
	"os"

	"ffccd/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.002, "workload scale relative to the paper")
	clients := flag.Int("clients", 0, "serving mode: simulated client connections (0 = closed-loop Figure 16 mode)")
	rate := flag.Float64("rate", 0, "serving mode: aggregate offered load in simulated ops/sec (0 = auto-calibrate)")
	scheme := flag.String("scheme", "all", "serving mode: defrag scheme (none|ffccd|stw|mesh|all)")
	ops := flag.Int("ops", 0, "serving mode: operations to dispatch (0 = scaled default)")
	keys := flag.Int("keys", 0, "serving mode: keyspace size (0 = scaled default)")
	seed := flag.Int64("seed", 7, "serving mode: RNG seed")
	window := flag.Uint64("window", 0, "serving mode: time-series window width in simulated cycles (0 = scale-aware default)")
	noWindows := flag.Bool("nowindows", false, "serving mode: disable the per-window time series")
	crashAt := flag.Float64("crash-at", 0, "availability mode: crash each scheme at this fraction of its site census (0 = off)")
	shards := flag.Int("shards", 1, "serving/availability modes: shard the keyspace across N independent machines")
	crashShard := flag.Int("crash-shard", 0, "availability mode: the shard the crash targets (with -shards)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *crashAt > 0 {
		opts := experiments.ServingCrashOptions{
			Clients:      *clients,
			Ops:          *ops,
			Keyspace:     *keys,
			Seed:         *seed,
			SiteFrac:     *crashAt,
			WindowCycles: *window,
			Shards:       *shards,
			CrashShard:   *crashShard,
		}
		if *scheme != "all" {
			opts.Schemes = []string{*scheme}
		}
		res, err := experiments.ServingCrash(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res)
		return
	}

	if *clients > 0 {
		opts := experiments.ServingOptions{
			Scale:        *scale,
			Clients:      *clients,
			Ops:          *ops,
			Keyspace:     *keys,
			RatePerSec:   *rate,
			Seed:         *seed,
			WindowCycles: *window,
			NoWindows:    *noWindows,
			Shards:       *shards,
		}
		if *scheme != "all" {
			opts.Schemes = []string{*scheme}
		}
		res, err := experiments.Serving(opts)
		if err != nil {
			fail(err)
		}
		fmt.Println(res)
		return
	}

	res, err := experiments.Figure16(*scale)
	if err != nil {
		fail(err)
	}
	fmt.Println(res)
}
