// ffccd-redis runs the §7.4 Redis case study and prints the Figure 16
// footprint-over-time series and tail-latency comparison for the PMDK
// baseline, FFCCD, a stop-the-world compactor, and Mesh.
//
//	ffccd-redis -scale 0.002
package main

import (
	"flag"
	"fmt"
	"os"

	"ffccd/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 0.002, "workload scale relative to the paper")
	flag.Parse()

	res, err := experiments.Figure16(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(res)
}
