module ffccd

go 1.23
