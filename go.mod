module ffccd

go 1.22
