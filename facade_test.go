package ffccd_test

// Public-facade tests beyond the quickstart round trip: every scheme through
// the same fragment→defragment→verify path, huge-page pools, engine stats,
// and the stop-the-world comparator — all via the ffccd package only.

import (
	"bytes"
	"fmt"
	"testing"

	"ffccd"
)

func buildFragmentedList(t *testing.T, cfg *ffccd.Config) (*ffccd.Runtime, *ffccd.Pool, *ffccd.Ctx, *ffccd.List) {
	t.Helper()
	rt := ffccd.NewRuntime(cfg, 128<<20)
	ctx := ffccd.NewCtx(cfg)
	reg := ffccd.NewRegistry()
	ffccd.RegisterStoreTypes(reg)
	pool, err := rt.Create("facade", 64<<20, ffccd.Page4K, reg)
	if err != nil {
		t.Fatal(err)
	}
	list, err := ffccd.NewList(ctx, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 2400; i++ {
		if err := list.Insert(ctx, i, []byte{byte(i), byte(i >> 8), 0xA5}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 2400; i += 2 {
		list.Delete(ctx, i)
	}
	pool.Device().FlushAll(ctx)
	return rt, pool, ctx, list
}

func verifySurvivors(t *testing.T, ctx *ffccd.Ctx, list *ffccd.List) {
	t.Helper()
	if list.Len() != 1200 {
		t.Fatalf("len = %d, want 1200", list.Len())
	}
	for i := uint64(1); i < 2400; i += 2 {
		v, ok := list.Get(ctx, i)
		if !ok || !bytes.Equal(v, []byte{byte(i), byte(i >> 8), 0xA5}) {
			t.Fatalf("key %d lost or corrupt", i)
		}
	}
}

func TestEverySchemeDefragmentsViaFacade(t *testing.T) {
	for _, scheme := range []ffccd.Scheme{
		ffccd.SchemeEspresso, ffccd.SchemeSFCCD, ffccd.SchemeFFCCD, ffccd.SchemeFFCCDCheckLookup,
	} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := ffccd.DefaultConfig()
			_, pool, ctx, list := buildFragmentedList(t, &cfg)
			before := pool.Heap().Frag(ffccd.Page4K)

			opt := ffccd.DefaultEngineOptions()
			opt.Scheme = scheme
			opt.TriggerRatio, opt.TargetRatio = 1.05, 1.02
			eng := ffccd.NewEngine(pool, opt)
			defer eng.Close()
			if !eng.RunCycle(ctx) {
				t.Fatal("no cycle ran")
			}
			after := pool.Heap().Frag(ffccd.Page4K)
			if after.FragRatio >= before.FragRatio {
				t.Errorf("fragR %.3f → %.3f: no improvement", before.FragRatio, after.FragRatio)
			}
			st := eng.Stats()
			if st.Cycles != 1 || st.ObjectsMoved == 0 || st.FramesReleased == 0 {
				t.Errorf("stats not accounted: %+v", st)
			}
			verifySurvivors(t, ctx, list)
		})
	}
}

func TestHugePagePoolViaFacade(t *testing.T) {
	cfg := ffccd.DefaultConfig()
	rt := ffccd.NewRuntime(&cfg, 256<<20)
	ctx := ffccd.NewCtx(&cfg)
	reg := ffccd.NewRegistry()
	ffccd.RegisterStoreTypes(reg)
	pool, err := rt.Create("huge", 192<<20, ffccd.Page2M, reg)
	if err != nil {
		t.Fatal(err)
	}
	bt, err := ffccd.NewBPTree(ctx, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4000; i++ {
		if err := bt.Insert(ctx, i, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 4000; i += 4 {
		bt.Delete(ctx, i)
	}
	pool.Device().FlushAll(ctx)
	before := pool.Heap().Frag(ffccd.Page2M)

	opt := ffccd.DefaultEngineOptions()
	opt.Scheme = ffccd.SchemeFFCCDCheckLookup
	opt.TriggerRatio, opt.TargetRatio = 1.02, 1.01
	eng := ffccd.NewEngine(pool, opt)
	defer eng.Close()
	eng.RunCycle(ctx)
	after := pool.Heap().Frag(ffccd.Page2M)
	if after.FootprintBytes > before.FootprintBytes {
		t.Errorf("huge-page footprint grew: %d → %d", before.FootprintBytes, after.FootprintBytes)
	}
	for i := uint64(1); i < 4000; i += 4 {
		if v, ok := bt.Get(ctx, i); !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key %d lost after huge-page defrag", i)
		}
	}
}

func TestSTWComparatorViaFacade(t *testing.T) {
	cfg := ffccd.DefaultConfig()
	_, pool, ctx, list := buildFragmentedList(t, &cfg)
	opt := ffccd.DefaultEngineOptions()
	opt.TriggerRatio, opt.TargetRatio = 1.05, 1.02
	eng := ffccd.NewEngine(pool, opt)
	defer eng.Close()
	pause, ran := eng.RunCycleSTW(ctx)
	if !ran || pause == 0 {
		t.Fatalf("STW cycle: ran=%v pause=%d", ran, pause)
	}
	if got := eng.STWPauses(); len(got) != 1 || got[0] != pause {
		t.Errorf("pause history = %v, want [%d]", got, pause)
	}
	verifySurvivors(t, ctx, list)
}

func TestRunCycleNoOpWhenCompact(t *testing.T) {
	cfg := ffccd.DefaultConfig()
	rt := ffccd.NewRuntime(&cfg, 64<<20)
	ctx := ffccd.NewCtx(&cfg)
	reg := ffccd.NewRegistry()
	ffccd.RegisterStoreTypes(reg)
	pool, err := rt.Create("dense", 32<<20, ffccd.Page4K, reg)
	if err != nil {
		t.Fatal(err)
	}
	list, err := ffccd.NewList(ctx, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		list.Insert(ctx, i, []byte{1, 2, 3})
	}
	pool.Device().FlushAll(ctx)
	opt := ffccd.DefaultEngineOptions()
	opt.TriggerRatio = 1.5 // dense heap sits below the trigger
	eng := ffccd.NewEngine(pool, opt)
	defer eng.Close()
	if eng.RunCycle(ctx) {
		t.Error("cycle ran on a heap below the trigger ratio")
	}
	if st := eng.Stats(); st.Cycles != 0 {
		t.Errorf("stats recorded a phantom cycle: %+v", st)
	}
}
