package ffccd_test

import (
	"bytes"
	"testing"

	"ffccd"
)

// TestPublicAPIRoundTrip exercises the README quickstart path end to end:
// create, populate, fragment, defragment, crash, recover, verify.
func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := ffccd.DefaultConfig()
	cfg.CacheBytes = 256 * 1024
	rt := ffccd.NewRuntime(&cfg, 128<<20)
	ctx := ffccd.NewCtx(&cfg)

	reg := ffccd.NewRegistry()
	ffccd.RegisterStoreTypes(reg)
	pool, err := rt.Create("api", 64<<20, ffccd.Page4K, reg)
	if err != nil {
		t.Fatal(err)
	}
	list, err := ffccd.NewList(ctx, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3000; i++ {
		if err := list.Insert(ctx, i, []byte{byte(i), 0x5A}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 3000; i += 2 {
		list.Delete(ctx, i)
	}
	pool.Device().FlushAll(ctx)

	opt := ffccd.DefaultEngineOptions()
	opt.Scheme = ffccd.SchemeFFCCD
	opt.TriggerRatio, opt.TargetRatio = 1.05, 1.02
	eng := ffccd.NewEngine(pool, opt)
	if !eng.BeginCycle(ctx) {
		t.Fatal("expected a defragmentation cycle")
	}
	eng.StepCompaction(ctx, 300)

	// Power failure mid-epoch, then the full recovery path.
	pool.Device().Crash()
	if eng.RBB() != nil {
		eng.RBB().PowerLossFlush()
	}
	rt2, err := ffccd.AttachRuntime(&cfg, rt.Device())
	if err != nil {
		t.Fatal(err)
	}
	reg2 := ffccd.NewRegistry()
	ffccd.RegisterStoreTypes(reg2)
	pool2, err := rt2.Open("api", reg2)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := ffccd.Recover(ctx, pool2, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()

	list2, err := ffccd.NewList(ctx, pool2)
	if err != nil {
		t.Fatal(err)
	}
	if list2.Len() != 1500 {
		t.Fatalf("len = %d, want 1500", list2.Len())
	}
	for i := uint64(1); i < 3000; i += 2 {
		v, ok := list2.Get(ctx, i)
		if !ok || !bytes.Equal(v, []byte{byte(i), 0x5A}) {
			t.Fatalf("key %d lost or corrupt after crash recovery", i)
		}
	}
	if st := pool2.Heap().Frag(ffccd.Page4K); st.FragRatio > 1.3 {
		t.Errorf("post-recovery fragR = %.2f", st.FragRatio)
	}
}
