// Quickstart: create a pool on the simulated persistent memory, build a
// persistent linked list, fragment it with deletions, and run one FFCCD
// defragmentation cycle.
package main

import (
	"fmt"
	"log"

	"ffccd"
)

func main() {
	// A simulated machine with Table 2 parameters and a 256 MB PM device.
	cfg := ffccd.DefaultConfig()
	rt := ffccd.NewRuntime(&cfg, 256<<20)
	ctx := ffccd.NewCtx(&cfg)

	// Types must be registered before the pool is used (the PM programming
	// model's typed allocation).
	reg := ffccd.NewRegistry()
	ffccd.RegisterStoreTypes(reg)
	pool, err := rt.Create("quickstart", 64<<20, ffccd.Page4K, reg)
	if err != nil {
		log.Fatal(err)
	}

	list, err := ffccd.NewList(ctx, pool)
	if err != nil {
		log.Fatal(err)
	}

	// Populate, then delete three of every four entries: classic external
	// fragmentation — many pages, little live data.
	const n = 20000
	for i := uint64(0); i < n; i++ {
		if err := list.Insert(ctx, i, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			log.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if i%4 != 0 {
			list.Delete(ctx, i)
		}
	}

	before := pool.Heap().Frag(ffccd.Page4K)
	fmt.Printf("before defragmentation: footprint=%.2f MB, live=%.2f MB, fragR=%.2f\n",
		float64(before.FootprintBytes)/(1<<20), float64(before.LiveBytes)/(1<<20), before.FragRatio)

	// One fence-free crash-consistent concurrent defragmentation cycle.
	eng := ffccd.NewEngine(pool, ffccd.DefaultEngineOptions())
	defer eng.Close()
	eng.RunCycle(ctx)

	after := pool.Heap().Frag(ffccd.Page4K)
	fmt.Printf("after  defragmentation: footprint=%.2f MB, live=%.2f MB, fragR=%.2f\n",
		float64(after.FootprintBytes)/(1<<20), float64(after.LiveBytes)/(1<<20), after.FragRatio)
	st := eng.Stats()
	fmt.Printf("engine: %d cycle(s), %d objects moved, %d frames released\n",
		st.Cycles, st.ObjectsMoved, st.FramesReleased)

	// Data intact?
	v, ok := list.Get(ctx, 0)
	fmt.Printf("list.Get(0) = %q, %v\n", v, ok)
}
