// KV store example: an Echo-style persistent hash store serving a mixed
// workload while FFCCD defragments concurrently in the background (the
// paper's §7.3 setting), then surviving a crash mid-defragmentation.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ffccd"
)

func main() {
	cfg := ffccd.DefaultConfig()
	rt := ffccd.NewRuntime(&cfg, 256<<20)
	ctx := ffccd.NewCtx(&cfg)
	reg := ffccd.NewRegistry()
	ffccd.RegisterKVTypes(reg)
	pool, err := rt.Create("kvdemo", 128<<20, ffccd.Page4K, reg)
	if err != nil {
		log.Fatal(err)
	}

	store, err := ffccd.NewEcho(ctx, pool, 4096)
	if err != nil {
		log.Fatal(err)
	}

	// Background engine with automatic triggering: pmalloc/pfree check the
	// fragmentation ratio and signal a cycle past the 1.5 trigger (§5).
	opt := ffccd.DefaultEngineOptions()
	opt.AutoTrigger = true
	eng := ffccd.NewEngine(pool, opt)

	// Mixed workload: inserts, overwrites, deletes — with a mass-expiry
	// burst partway through (the fragmentation spike that trips the 1.5
	// trigger, like a cache flushing cold entries).
	rng := rand.New(rand.NewSource(42))
	model := map[uint64]byte{}
	mixed := func(ops int) {
		for op := 0; op < ops; op++ {
			key := rng.Uint64() % 15000
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4, 5:
				tag := byte(op)
				val := make([]byte, 64+rng.Intn(128))
				val[0] = tag
				if err := store.Insert(ctx, key, val); err != nil {
					log.Fatal(err)
				}
				model[key] = tag
			case 6, 7:
				store.Delete(ctx, key)
				delete(model, key)
			default:
				store.Get(ctx, key)
			}
		}
	}
	mixed(40000)
	// Expiry burst: drop ~70% of the live set.
	for key := range model {
		if rng.Intn(10) < 7 {
			store.Delete(ctx, key)
			delete(model, key)
		}
	}
	mixed(20000)
	eng.Close() // finish any in-flight cycle
	st := eng.Stats()
	frag := pool.Heap().Frag(ffccd.Page4K)
	fmt.Printf("after workload: %d keys, fragR=%.2f, %d auto cycles, %d objects moved, %d leaks reclaimed\n",
		store.Len(), frag.FragRatio, st.Cycles, st.ObjectsMoved, st.LeaksReclaimed)

	// Verify against the model.
	bad := 0
	for k, tag := range model {
		v, ok := store.Get(ctx, k)
		if !ok || v[0] != tag {
			bad++
		}
	}
	fmt.Printf("verification: %d/%d keys correct\n", len(model)-bad, len(model))
	if bad > 0 {
		log.Fatal("store corrupted")
	}

	// Simulated restart (clean): reopen and read through.
	pool.Device().FlushAll(ctx)
	rt2, _ := ffccd.AttachRuntime(&cfg, rt.Device())
	reg2 := ffccd.NewRegistry()
	ffccd.RegisterKVTypes(reg2)
	pool2, _ := rt2.Open("kvdemo", reg2)
	eng2, err := ffccd.Recover(ctx, pool2, ffccd.DefaultEngineOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer eng2.Close()
	store2, _ := ffccd.NewEcho(ctx, pool2, 0)
	fmt.Printf("after restart: %d keys survive\n", store2.Len())
}
