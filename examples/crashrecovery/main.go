// Crash recovery walk-through: start a fence-free (FFCCD) defragmentation
// epoch, relocate part of the heap with nothing flushed, pull the plug, and
// recover — demonstrating Observations 1–4 of the paper end to end.
package main

import (
	"fmt"
	"log"

	"ffccd"
)

func main() {
	cfg := ffccd.DefaultConfig()
	// A small cache makes the lazy-persistence effects visible.
	cfg.CacheBytes = 256 * 1024
	rt := ffccd.NewRuntime(&cfg, 128<<20)
	ctx := ffccd.NewCtx(&cfg)
	reg := ffccd.NewRegistry()
	ffccd.RegisterStoreTypes(reg)
	pool, err := rt.Create("crashdemo", 64<<20, ffccd.Page4K, reg)
	if err != nil {
		log.Fatal(err)
	}

	list, _ := ffccd.NewList(ctx, pool)
	for i := uint64(0); i < 5000; i++ {
		list.Insert(ctx, i, []byte{byte(i), byte(i >> 8), 0xAB})
	}
	for i := uint64(0); i < 5000; i += 2 {
		list.Delete(ctx, i)
	}
	// The application is crash consistent on its own (its transactions
	// flushed); make the base state durable like a real app's quiesce point.
	pool.Device().FlushAll(ctx)

	opt := ffccd.DefaultEngineOptions()
	opt.Scheme = ffccd.SchemeFFCCD
	opt.TriggerRatio, opt.TargetRatio = 1.05, 1.02
	eng := ffccd.NewEngine(pool, opt)

	// Start an epoch: marking + summary persist the PMFT, then relocation
	// begins. relocate leaves every copied line dirty in the cache with its
	// pending bit set — nothing fenced, nothing flushed.
	if !eng.BeginCycle(ctx) {
		log.Fatal("heap not fragmented enough for a cycle")
	}
	moved := eng.StepCompaction(ctx, 800)
	fmt.Printf("epoch open: moved %d objects fence-free (copies still volatile)\n", moved)

	// Touch some entries so read barriers forward references mid-epoch.
	for i := uint64(1); i < 200; i += 2 {
		list.Get(ctx, i)
	}

	// Power failure: the cache is lost; ADR preserves the WPQ and flushes
	// the Reached Bitmap Buffer.
	fmt.Println("CRASH (cache dropped, ADR flushes WPQ + RBB)")
	pool.Device().Crash()
	if eng.RBB() != nil {
		eng.RBB().PowerLossFlush()
	}

	// Restart: attach the device, open the pool (new virtual base — the
	// offset-based persistent pointers make this safe), and recover. The
	// FFCCD recovery inspects the reached bitmap: partially-reached objects
	// are finished line by line, never-reached objects have their reference
	// updates undone, and the interrupted epoch completes.
	rt2, err := ffccd.AttachRuntime(&cfg, rt.Device())
	if err != nil {
		log.Fatal(err)
	}
	reg2 := ffccd.NewRegistry()
	ffccd.RegisterStoreTypes(reg2)
	pool2, err := rt2.Open("crashdemo", reg2)
	if err != nil {
		log.Fatal(err)
	}
	ctx2 := ffccd.NewCtx(&cfg)
	eng2, err := ffccd.Recover(ctx2, pool2, opt)
	if err != nil {
		log.Fatal(err)
	}
	defer eng2.Close()
	fmt.Println("recovery complete; defragmentation epoch finished")

	// Verify every surviving key.
	list2, _ := ffccd.NewList(ctx2, pool2)
	bad := 0
	for i := uint64(1); i < 5000; i += 2 {
		v, ok := list2.Get(ctx2, i)
		if !ok || len(v) != 3 || v[0] != byte(i) || v[2] != 0xAB {
			bad++
		}
	}
	fmt.Printf("post-crash check: %d keys verified, %d corrupted\n", list2.Len(), bad)
	st := pool2.Heap().Frag(ffccd.Page4K)
	fmt.Printf("post-recovery fragR=%.2f (compaction completed during recovery)\n", st.FragRatio)
	if bad > 0 {
		log.Fatal("data corruption detected")
	}
}
