// Fragmentation demo: reproduce the paper's Figure 1 motivation — persistent
// memory fragmentation survives restarts and keeps worsening across runs of
// the same application, unless a defragmenter intervenes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ffccd"
)

func main() {
	for _, withDefrag := range []bool{false, true} {
		label := "PMDK baseline (no defragmentation)"
		if withDefrag {
			label = "with FFCCD"
		}
		fmt.Printf("== %s ==\n", label)
		run3(withDefrag)
		fmt.Println()
	}
}

func run3(withDefrag bool) {
	cfg := ffccd.DefaultConfig()
	rt := ffccd.NewRuntime(&cfg, 256<<20)
	reg := func() *ffccd.Registry {
		r := ffccd.NewRegistry()
		ffccd.RegisterStoreTypes(r)
		return r
	}
	pool, err := rt.Create("fragdemo", 96<<20, ffccd.Page4K, reg())
	if err != nil {
		log.Fatal(err)
	}
	dev := rt.Device()

	rng := rand.New(rand.NewSource(9))
	var live []uint64
	next := uint64(0)
	val := func(k uint64) []byte { return make([]byte, 64+int(k*37%160)) }

	for run := 1; run <= 3; run++ {
		ctx := ffccd.NewCtx(&cfg)
		if run > 1 {
			// "Next day": reattach the device and reopen the pool.
			rt2, err := ffccd.AttachRuntime(&cfg, dev)
			if err != nil {
				log.Fatal(err)
			}
			pool, err = rt2.Open("fragdemo", reg())
			if err != nil {
				log.Fatal(err)
			}
			eng, err := ffccd.Recover(ctx, pool, ffccd.EngineOptions{Scheme: ffccd.SchemeNone})
			if err != nil {
				log.Fatal(err)
			}
			eng.Close()
		}
		list, err := ffccd.NewList(ctx, pool)
		if err != nil {
			log.Fatal(err)
		}
		var eng *ffccd.Engine
		if withDefrag {
			eng = ffccd.NewEngine(pool, ffccd.DefaultEngineOptions())
		}

		insert := func() {
			k := next
			next++
			if err := list.Insert(ctx, k, val(k)); err != nil {
				log.Fatal(err)
			}
			live = append(live, k)
		}
		remove := func() {
			if len(live) == 0 {
				return
			}
			i := rng.Intn(len(live))
			k := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			list.Delete(ctx, k)
		}

		if run == 1 {
			for i := 0; i < 8000; i++ {
				insert()
			}
		}
		for i := 0; i < 3200; i++ {
			remove()
		}
		for i := 0; i < 3200; i++ {
			insert()
		}
		if eng != nil {
			eng.RunCycle(ctx)
			eng.Close()
		}
		st := pool.Heap().Frag(ffccd.Page4K)
		fmt.Printf("run %d: footprint=%.2f MB  live=%.2f MB  fragR=%.2f\n",
			run, float64(st.FootprintBytes)/(1<<20), float64(st.LiveBytes)/(1<<20), st.FragRatio)
		dev.FlushAll(ctx) // clean shutdown
	}
}
